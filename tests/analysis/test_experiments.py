"""Unit tests for the canned experiment builders and runners."""

import pytest

from repro.analysis import (
    build_testbed,
    make_workload,
    run_figure_experiment,
    run_locality_experiment,
    run_table1_experiment,
    run_table2_experiment,
)
from repro.analysis.experiments import run_baseline_experiment
from repro.errors import ReproError
from repro.workloads import (
    BonniePlusPlus,
    IdleWorkload,
    KernelBuild,
    SpecWebBanking,
    VideoStreamServer,
)

SCALE = 0.003  # ~30k blocks, fast enough for unit tests


class TestBuilders:
    def test_workload_factory_types(self):
        cases = {
            "specweb": SpecWebBanking,
            "video": VideoStreamServer,
            "bonnie": BonniePlusPlus,
            "kernelbuild": KernelBuild,
            "idle": IdleWorkload,
        }
        for name, cls in cases.items():
            assert isinstance(make_workload(name, 100_000, 4_096, 0), cls)

    def test_unknown_workload_rejected(self):
        with pytest.raises(ReproError):
            make_workload("nope", 1000, 100, 0)

    def test_bad_scale_rejected(self):
        with pytest.raises(ReproError):
            build_testbed(scale=0)
        with pytest.raises(ReproError):
            build_testbed(scale=2)

    def test_testbed_is_runnable(self):
        bed = build_testbed("idle", scale=SCALE)
        bed.start_workload()
        bed.run_for(1.0)
        assert bed.env.now == 1.0

    def test_determinism(self):
        r1, _ = run_table1_experiment("specweb", scale=SCALE, warmup=2.0)
        r2, _ = run_table1_experiment("specweb", scale=SCALE, warmup=2.0)
        assert r1.total_migration_time == r2.total_migration_time
        assert r1.migrated_bytes == r2.migrated_bytes

    def test_seed_changes_outcome(self):
        r1, _ = run_table1_experiment("specweb", scale=SCALE, warmup=2.0,
                                      seed=0)
        r2, _ = run_table1_experiment("specweb", scale=SCALE, warmup=2.0,
                                      seed=1)
        assert r1.migrated_bytes != r2.migrated_bytes


class TestRunners:
    def test_table1_runner(self):
        report, bed = run_table1_experiment("video", scale=SCALE, warmup=2.0)
        assert report.consistency_verified
        assert bed.domain.host is bed.destination

    def test_table2_runner(self):
        primary, back, _ = run_table2_experiment("specweb", scale=SCALE,
                                                 warmup=2.0, dwell=3.0)
        assert not primary.incremental
        assert back.incremental
        assert back.migrated_bytes < primary.migrated_bytes

    def test_figure_runner_produces_series(self):
        report, bed = run_figure_experiment("specweb", scale=SCALE,
                                            migration_start=2.0, tail=3.0)
        times, values = bed.timeline.series("specweb:throughput")
        assert times.size > 0
        assert times[-1] > report.ended_at  # workload ran past migration

    def test_locality_runner(self):
        stats, _ = run_locality_experiment("kernelbuild", duration=20.0,
                                           scale=0.02, warmup=5.0)
        assert stats.write_ops > 0
        assert 0.0 <= stats.op_rewrite_fraction <= 1.0

    def test_baseline_runner_unknown_scheme(self):
        with pytest.raises(ReproError):
            run_baseline_experiment("teleport", scale=SCALE)

    def test_baseline_runner_tpm_path(self):
        report, _, mig = run_baseline_experiment("tpm", "idle", scale=SCALE,
                                                 warmup=1.0, tail=1.0)
        assert report.scheme == "tpm"
        assert mig is None
