"""End-to-end integration tests: the paper's scenarios at reduced scale."""

import numpy as np
import pytest

from repro.analysis import (
    build_testbed,
    mean_rate,
    performance_overhead,
    run_locality_experiment,
    run_table1_experiment,
    run_table2_experiment,
    stall_free,
)
from repro.analysis.experiments import run_baseline_experiment
from repro.core import MigrationConfig
from repro.units import MB

SCALE = 0.005  # ~50k blocks / ~195 MiB disk


class TestTableOneShape:
    """Qualitative shape of Table I at reduced scale."""

    @pytest.fixture(scope="class")
    def reports(self):
        out = {}
        for wl in ("specweb", "video", "bonnie"):
            out[wl], _ = run_table1_experiment(wl, scale=SCALE, warmup=5.0)
        return out

    def test_all_consistent(self, reports):
        assert all(r.consistency_verified for r in reports.values())

    def test_downtime_is_milliseconds_not_seconds(self, reports):
        for wl, r in reports.items():
            assert r.downtime < 0.2, wl

    def test_bonnie_takes_longest(self, reports):
        assert (reports["bonnie"].total_migration_time
                > reports["specweb"].total_migration_time)
        assert (reports["bonnie"].total_migration_time
                > reports["video"].total_migration_time)

    def test_bonnie_moves_most_data(self, reports):
        assert reports["bonnie"].migrated_bytes > max(
            reports["specweb"].migrated_bytes,
            reports["video"].migrated_bytes)

    def test_data_close_to_disk_size(self, reports):
        """Amount migrated is 'just a little larger than the VBD'."""
        for wl in ("specweb", "video"):
            r = reports[wl]
            disk_bytes = r.bytes_by_category["disk"]
            # within a few percent of one full disk copy for the calm loads
            from repro.analysis import FULL_DISK_BLOCKS
            vbd_bytes = int(FULL_DISK_BLOCKS * SCALE) * 4096
            assert disk_bytes < 1.15 * vbd_bytes, wl

    def test_video_has_fewest_iterations(self, reports):
        assert (len(reports["video"].disk_iterations)
                <= len(reports["bonnie"].disk_iterations))


class TestTableTwoShape:
    def test_im_dramatically_cheaper_for_all_workloads(self):
        for wl in ("specweb", "video", "bonnie"):
            primary, back, _ = run_table2_experiment(
                wl, scale=SCALE, warmup=5.0, dwell=5.0)
            assert back.migrated_bytes < 0.35 * primary.migrated_bytes, wl
            assert (back.storage_migration_time
                    < 0.35 * primary.storage_migration_time), wl

    def test_bonnie_im_costs_most_among_workloads(self):
        costs = {}
        for wl in ("specweb", "video", "bonnie"):
            _, back, _ = run_table2_experiment(wl, scale=SCALE, warmup=5.0,
                                               dwell=5.0)
            costs[wl] = back.bytes_by_category.get("disk", 0)
        assert costs["bonnie"] > costs["specweb"] > costs["video"]


class TestFigureFiveShape:
    def test_specweb_throughput_not_visibly_degraded(self):
        report, bed = run_table1_experiment("specweb", scale=SCALE,
                                            warmup=20.0)
        bed.run_for(20.0)
        baseline = mean_rate(bed.timeline, "specweb:throughput", 0.0, 20.0)
        during = mean_rate(bed.timeline, "specweb:throughput",
                           report.started_at, report.ended_at)
        assert during > 0.85 * baseline


class TestVideoFluency:
    def test_no_observable_stall_during_migration(self):
        report, bed = run_table1_experiment("video", scale=SCALE,
                                            warmup=10.0)
        bed.run_for(10.0)
        assert stall_free(bed.timeline, "video:read_latency",
                          (0.0, bed.env.now), threshold=2.0)
        assert bed.workload.stalls == 0


class TestFigureSixShape:
    def test_bonnie_degraded_during_migration_recovers_after(self):
        report, bed = run_table1_experiment("bonnie", scale=SCALE,
                                            warmup=20.0)
        bed.run_for(30.0)
        tl = bed.timeline
        series = "bonnie:write"
        result = performance_overhead(
            tl, series,
            migration_window=(report.precopy_disk_started_at,
                              report.precopy_disk_ended_at),
            baseline_window=(0.0, 20.0))
        assert result.overhead_fraction > 0.2  # visible impact

    def test_rate_limit_reduces_impact_but_lengthens_precopy(self):
        results = {}
        for label, limit in (("unlimited", None), ("limited", 25 * MB)):
            cfg = MigrationConfig(rate_limit=limit)
            report, bed = run_table1_experiment("bonnie", scale=SCALE,
                                                warmup=20.0, config=cfg)
            bed.run_for(10.0)
            overhead = performance_overhead(
                bed.timeline, "bonnie:write",
                migration_window=(report.precopy_disk_started_at,
                                  report.precopy_disk_ended_at),
                baseline_window=(0.0, 20.0))
            results[label] = (overhead.overhead_fraction,
                              report.precopy_disk_ended_at
                              - report.precopy_disk_started_at)
        assert results["limited"][0] < results["unlimited"][0]
        assert results["limited"][1] > results["unlimited"][1]


class TestLocalityShape:
    def test_ordering_matches_paper(self):
        """kernel build (11%) < specweb (25.2%) < bonnie (35.6%)."""
        fractions = {}
        for wl in ("kernelbuild", "specweb"):
            stats, _ = run_locality_experiment(wl, duration=60.0, scale=0.05,
                                               warmup=30.0)
            fractions[wl] = stats.op_rewrite_fraction
        assert fractions["kernelbuild"] < fractions["specweb"]
        assert fractions["kernelbuild"] == pytest.approx(0.11, abs=0.06)
        assert fractions["specweb"] == pytest.approx(0.252, abs=0.08)


class TestSchemeComparison:
    def test_tpm_beats_freeze_copy_downtime_and_ondemand_dependency(self):
        tpm, _, _ = run_baseline_experiment("tpm", "specweb", scale=SCALE,
                                            warmup=3.0, tail=1.0)
        fc, _, _ = run_baseline_experiment("freeze-and-copy", "specweb",
                                           scale=SCALE, warmup=3.0, tail=1.0)
        od, od_bed, od_mig = run_baseline_experiment(
            "on-demand", "specweb", scale=SCALE, warmup=3.0, tail=5.0)
        # TPM: downtime orders below freeze-and-copy.
        assert tpm.downtime < 0.05 * fc.downtime
        # TPM: finite dependency; on-demand: still dependent after the run.
        assert od_mig.dependency_alive
        od_mig.stop()
        od_bed.env.run(until=od_bed.env.now + 0.1)
