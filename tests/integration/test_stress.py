"""Failure-injection and stress scenarios for the migration core."""

import numpy as np
import pytest

from repro.core import MigrationConfig
from repro.errors import MigrationError
from repro.units import MB


class TestHostileNetworks:
    def test_slow_link_still_consistent(self, make_bed):
        """A 10 Mbit-class link: migration crawls but stays correct."""
        bed = make_bed(link_bw=1.25 * MB)
        bed.random_writer(region=(0, 100), interval=0.05)
        report = bed.migrate()
        assert report.consistency_verified
        assert report.total_migration_time > 5.0  # it *was* slow

    def test_high_latency_link(self, make_bed):
        bed = make_bed(latency=0.05)  # 50 ms one-way (WAN-ish)
        report = bed.migrate()
        assert report.consistency_verified
        # Latency inflates handshakes and post-copy but not correctness.

    def test_extreme_rate_limit(self, make_bed):
        bed = make_bed()
        cfg = bed.config.replace(rate_limit=0.5 * MB)
        report = bed.migrate(cfg)
        assert report.consistency_verified


class TestHostileWorkloads:
    def test_dirty_rate_above_transfer_rate(self, make_bed):
        """Writes outpace the link: pre-copy must bail, post-copy fixes."""
        bed = make_bed(link_bw=2 * MB)
        bed.random_writer(region=(0, 1900), interval=0.0005, nblocks=8)
        report = bed.migrate()
        assert report.consistency_verified
        assert len(report.disk_iterations) <= bed.config.max_disk_iterations
        assert report.remaining_dirty_blocks > 0  # handed to post-copy

    def test_whole_disk_rewriter(self, make_bed):
        """A sequential writer that rewrites the entire disk repeatedly."""
        bed = make_bed()
        state = {"cursor": 0}

        def scrubber(env):
            while True:
                yield from bed.domain.ensure_running()
                yield from bed.domain.write(state["cursor"], 8)
                state["cursor"] = (state["cursor"] + 8) % (bed.vbd.nblocks - 8)
                yield env.timeout(0.001)

        bed.env.process(scrubber(bed.env))
        report = bed.migrate()
        assert report.consistency_verified

    def test_reader_hammering_dirty_blocks_during_postcopy(self, make_bed):
        """Reads chase the dirty set: pulls must not break consistency."""
        bed = make_bed()
        rng = np.random.default_rng(3)

        def hotloop(env):
            while True:
                yield from bed.domain.ensure_running()
                block = int(rng.integers(0, 200))
                yield from bed.domain.write(block, 2)
                yield from bed.domain.read(int(rng.integers(0, 200)))
                yield env.timeout(0.0005)

        bed.env.process(hotloop(bed.env))
        report = bed.migrate()
        assert report.consistency_verified

    def test_zero_think_time_guest(self, make_bed):
        """A guest that never idles (the verify-retry regression case)."""
        bed = make_bed()

        def busy(env):
            cursor = 0
            while True:
                yield from bed.domain.ensure_running()
                yield from bed.domain.write(cursor % 500, 4)
                yield from bed.domain.read((cursor * 7) % 1000, 4)
                cursor += 1  # no timeout: back-to-back I/O forever

        bed.env.process(busy(bed.env))
        report = bed.migrate()
        assert report.consistency_verified


class TestRepeatedMigrations:
    def test_ping_pong_ten_times(self, make_bed):
        bed = make_bed()
        bed.random_writer(region=(0, 300), interval=0.01)
        for i in range(10):
            report = bed.migrate()
            assert report.consistency_verified, f"round {i}"
            if i > 0:
                assert report.incremental, f"round {i}"
            bed.env.run(until=bed.env.now + 0.3)

    def test_im_with_layered_bitmaps(self, make_bed):
        bed = make_bed()
        cfg = bed.config.replace(bitmap_layout="layered", leaf_bits=256)
        bed.random_writer(region=(0, 300), interval=0.01)
        first = bed.migrate(cfg)
        bed.env.run(until=bed.env.now + 0.5)
        second = bed.migrate(cfg)
        assert second.incremental
        assert second.consistency_verified


class TestGeometry:
    def test_one_block_disk(self, make_bed):
        bed = make_bed(nblocks=1, npages=1)
        report = bed.migrate()
        assert report.consistency_verified
        assert report.disk_iterations[0].units_sent == 1

    def test_odd_sized_disk(self, make_bed):
        bed = make_bed(nblocks=1237)  # not a multiple of any chunk size
        report = bed.migrate()
        assert report.consistency_verified

    def test_mismatched_stale_vbd_rejected(self, bed):
        from repro.core import ThreePhaseMigration

        wrong_vbd = bed.destination.prepare_vbd(bed.vbd.nblocks + 1)
        fwd, rev = bed.channels()
        migration = ThreePhaseMigration(
            bed.env, bed.domain, bed.source, bed.destination, fwd, rev,
            bed.config, dest_vbd=wrong_vbd)

        def proc(env):
            return (yield from migration.run())

        with pytest.raises(MigrationError, match="geometry"):
            bed.env.run(until=bed.env.process(proc(bed.env)))
