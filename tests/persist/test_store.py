"""Unit tests for StableStorage and BitmapStore: sync policies, crash and
recovery, guard regions, and the conservative-recovery invariant."""

import numpy as np
import pytest

from repro.errors import PersistError
from repro.persist import BitmapStore, StableStorage
from repro.persist.store import AREA_SNAPSHOT

NBITS = 1000


def idx(*values):
    return np.asarray(values, dtype=np.int64)


def recovered_set(store):
    bitmap, _info = store.recover()
    return set(bitmap.dirty_indices().tolist())


class TestStableStorage:
    def test_areas_are_durable_across_crash(self):
        storage = StableStorage()
        storage.write_area("a", b"hello")
        storage.crash()
        assert storage.read_area("a") == b"hello"

    def test_crash_loses_exactly_the_staged_tail(self):
        storage = StableStorage()
        storage.append_journal(b"one")
        storage.flush_journal()
        storage.append_journal(b"two")
        assert storage.staged_count == 1
        storage.crash()
        assert storage.durable_records() == [b"one"]
        assert storage.record_count == 1

    def test_flush_is_counted_only_when_it_does_work(self):
        storage = StableStorage()
        storage.append_journal(b"x")
        storage.flush_journal()
        storage.flush_journal()  # nothing staged: no extra flush
        assert storage.journal_flushes == 1

    def test_truncate_resets_everything(self):
        storage = StableStorage()
        storage.append_journal(b"x")
        storage.flush_journal()
        storage.truncate_journal()
        assert storage.record_count == 0
        assert storage.durable_records() == []


class TestValidation:
    def test_rejects_bad_parameters(self):
        with pytest.raises(PersistError):
            BitmapStore(0)
        with pytest.raises(PersistError):
            BitmapStore(NBITS, policy="fsync")
        with pytest.raises(PersistError):
            BitmapStore(NBITS, flush_every=0)
        with pytest.raises(PersistError):
            BitmapStore(NBITS, region_bits=0)
        with pytest.raises(PersistError):
            BitmapStore(NBITS, snapshot_every=0)

    def test_operations_require_an_open_session(self):
        store = BitmapStore(NBITS)
        for call in (lambda: store.record_set(idx(1)),
                     lambda: store.record_clear(idx(1)),
                     store.flush, store.snapshot, store.complete,
                     store.pending_count):
            with pytest.raises(PersistError, match="open session"):
                call()

    def test_recover_without_any_snapshot_raises(self):
        with pytest.raises(PersistError, match="nothing persisted"):
            BitmapStore(NBITS).recover()


class TestSessionLifecycle:
    def test_open_with_none_marks_everything_pending(self):
        store = BitmapStore(NBITS)
        store.open_session(None)
        assert store.pending_count() == NBITS

    def test_open_with_indices_marks_exactly_those(self):
        store = BitmapStore(NBITS)
        store.open_session(idx(1, 2, 3))
        assert set(store.pending_indices().tolist()) == {1, 2, 3}

    def test_complete_leaves_nothing_recoverable(self):
        store = BitmapStore(NBITS)
        store.open_session(idx(1, 2))
        store.record_set(idx(10))
        store.complete()
        assert not store.is_open
        assert not store.recoverable
        store.crash()
        with pytest.raises(PersistError, match="clean"):
            store.recover()

    def test_fresh_store_is_not_recoverable(self):
        assert not BitmapStore(NBITS).recoverable

    def test_dedup_skips_already_pending_blocks(self):
        store = BitmapStore(NBITS)
        store.open_session(idx(5))
        store.record_set(idx(5))          # no-op: already pending
        store.record_clear(idx(6))        # no-op: not pending
        assert store.stats.records_appended == 0
        store.record_set(idx(5, 6))       # only 6 is fresh
        assert store.stats.records_appended == 1


class TestWalRecovery:
    def test_recovery_is_exact(self):
        store = BitmapStore(NBITS, policy="wal")
        store.open_session(idx(1, 2, 3))
        store.record_set(idx(10, 11))
        store.record_clear(idx(2))
        store.crash()
        assert store.recoverable
        bitmap, info = store.recover()
        assert set(bitmap.dirty_indices().tolist()) == {1, 3, 10, 11}
        assert info.exact
        assert info.source == "journal"
        assert info.replayed_records == 2
        assert info.guard_regions == 0
        assert info.overmarked_blocks == 0
        assert info.pending_blocks == 4

    def test_recovered_store_keeps_journaling(self):
        store = BitmapStore(NBITS, policy="wal")
        store.open_session(idx(1))
        store.crash()
        store.recover()
        assert store.is_open
        store.record_set(idx(50))
        store.crash()
        assert recovered_set(store) == {1, 50}

    def test_layout_request_is_honoured(self):
        from repro.bitmap import LayeredBitmap

        store = BitmapStore(NBITS)
        store.open_session(idx(7))
        store.crash()
        bitmap, _ = store.recover(layout="layered", leaf_bits=64)
        assert isinstance(bitmap, LayeredBitmap)
        assert bitmap.test(7)


class TestLazyPolicies:
    def test_batch_staged_sets_covered_by_guard(self):
        store = BitmapStore(NBITS, policy="batch", flush_every=100,
                            region_bits=8)
        store.open_session(idx())
        store.record_set(idx(9))          # staged only, guard covers [8, 16)
        store.crash()                     # staged record lost
        bitmap, info = store.recover()
        got = set(bitmap.dirty_indices().tolist())
        assert got == set(range(8, 16))   # whole region, never less than {9}
        assert not info.exact
        assert info.guard_regions == 1
        assert info.overmarked_blocks == 8

    def test_batch_flush_drops_the_guard(self):
        store = BitmapStore(NBITS, policy="batch", flush_every=2,
                            region_bits=8)
        store.open_session(idx())
        store.record_set(idx(9))
        store.record_set(idx(200))        # second record triggers the flush
        store.crash()
        bitmap, info = store.recover()
        assert set(bitmap.dirty_indices().tolist()) == {9, 200}
        assert info.exact and info.guard_regions == 0

    def test_snapshot_policy_never_flushes_records(self):
        store = BitmapStore(NBITS, policy="snapshot", region_bits=8)
        store.open_session(idx())
        for i in range(20):
            store.record_set(idx(i * 8))
        assert store.storage.journal_flushes == 0
        store.crash()
        bitmap, info = store.recover()
        # Everything set since the last snapshot comes back via guards.
        assert set(idx(*range(0, 160, 8)).tolist()) <= \
            set(bitmap.dirty_indices().tolist())
        assert info.guard_regions == 20

    def test_lost_clear_leaves_block_pending(self):
        store = BitmapStore(NBITS, policy="batch", flush_every=100)
        store.open_session(idx(1, 2, 3))
        store.record_clear(idx(2))        # staged, then lost
        store.crash()
        assert recovered_set(store) >= {1, 2, 3}   # 2 is back: safe

    def test_explicit_snapshot_compacts_the_journal(self):
        store = BitmapStore(NBITS, policy="wal")
        store.open_session(idx())
        store.record_set(idx(1, 2, 3))
        store.snapshot()
        assert store.storage.record_count == 0
        store.crash()
        assert recovered_set(store) == {1, 2, 3}

    def test_auto_snapshot_bounds_the_journal(self):
        store = BitmapStore(NBITS, policy="wal", snapshot_every=4)
        store.open_session(idx())
        for i in range(10):
            store.record_set(idx(i))
        assert store.storage.record_count < 4
        assert store.stats.snapshots_written > 1


class TestDamage:
    def test_corrupt_snapshot_degrades_to_all_dirty(self):
        store = BitmapStore(NBITS)
        store.open_session(idx(1))
        store.crash()
        store.storage.corrupt_area(AREA_SNAPSHOT, offset=20)
        assert store.recoverable
        bitmap, info = store.recover()
        assert bitmap.count() == NBITS
        assert info.source == "corrupt-snapshot"
        assert not info.exact
        assert info.overmarked_blocks == NBITS

    def test_hole_mid_journal_degrades_to_all_dirty(self):
        store = BitmapStore(NBITS, policy="wal")
        store.open_session(idx())
        store.record_set(idx(1))
        store.record_set(idx(2))
        store.record_set(idx(3))
        store.crash()
        store.storage.corrupt_record(1)   # middle record damaged
        bitmap, info = store.recover()
        assert bitmap.count() == NBITS
        assert info.source == "corrupt-journal"
        assert not info.exact

    def test_wrong_sized_snapshot_is_rejected(self):
        storage = StableStorage()
        other = BitmapStore(NBITS // 2, storage=storage)
        other.open_session(idx(1))
        store = BitmapStore(NBITS, storage=storage)
        bitmap, info = store.recover()
        assert bitmap.count() == NBITS    # size mismatch -> conservative
        assert info.source == "corrupt-snapshot"


class TestAccounting:
    def test_collect_stats_folds_in_storage_counters(self):
        store = BitmapStore(NBITS, policy="wal")
        store.open_session(idx())
        store.record_set(idx(1))
        store.record_clear(idx(1))
        stats = store.collect_stats()
        assert stats.set_records == 1
        assert stats.clear_records == 1
        assert stats.records_appended == 2
        assert stats.journal_flushes == store.storage.journal_flushes
        assert stats.area_writes == store.storage.area_writes
        assert stats.sessions_opened == 1

    def test_wal_writes_more_often_than_snapshot_policy(self):
        def journal_flushes(policy):
            store = BitmapStore(NBITS, policy=policy, flush_every=16)
            store.open_session(idx())
            for i in range(64):
                store.record_set(idx(i))
            return store.collect_stats().journal_flushes

        assert journal_flushes("wal") > journal_flushes("batch") > \
            journal_flushes("snapshot")

    def test_snapshot_nbytes_reports_persisted_size(self):
        store = BitmapStore(NBITS)
        assert store.snapshot_nbytes() == 0
        store.open_session(idx())
        assert store.snapshot_nbytes() > NBITS // 8
