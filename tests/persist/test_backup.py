"""Backup chains: full + bitmap-driven incrementals, restore, crash
recovery of the tracking bitmap, and carry-across-migration."""

import pytest

from repro.errors import PersistError
from repro.persist import BackupChain, backup_tracking_name


def write_blocks(bed, blocks):
    """Run guest writes (through the driver, so tracking bitmaps see them)."""
    domain = bed.domain

    def proc(env):
        for block in blocks:
            yield from domain.ensure_running()
            yield from domain.write(int(block), 1)

    bed.env.run(until=bed.env.process(proc(bed.env), name="backup-writer"))


def live_vbd(bed):
    return bed.domain.host.vbd_of(bed.domain.domain_id)


class TestChainBasics:
    def test_full_then_incremental_capture_the_right_blocks(self, byte_bed):
        chain = BackupChain(byte_bed.domain)
        full = chain.full_backup()
        assert full.kind == "full"
        assert full.nblocks == 256          # prefilled: everything allocated
        assert chain.pending_blocks() == 0

        write_blocks(byte_bed, [3, 7, 7])
        assert chain.pending_blocks() == 2
        inc = chain.incremental_backup()
        assert inc.kind == "incremental"
        assert set(inc.indices.tolist()) == {3, 7}
        assert chain.pending_blocks() == 0

    def test_incremental_before_full_raises(self, byte_bed):
        chain = BackupChain(byte_bed.domain)
        with pytest.raises(PersistError, match="before the first full"):
            chain.incremental_backup()

    def test_tracking_bitmap_is_registered_with_the_driver(self, byte_bed):
        chain = BackupChain(byte_bed.domain)
        driver = byte_bed.source.driver_of(byte_bed.domain.domain_id)
        name = backup_tracking_name(byte_bed.domain.domain_id)
        assert chain.tracking_name == name
        assert driver.has_tracking(name)
        chain.close()
        assert not driver.has_tracking(name)
        assert not chain.store.is_open

    def test_nbytes_accounting(self, byte_bed):
        chain = BackupChain(byte_bed.domain)
        full = chain.full_backup()
        assert full.nbytes == full.nblocks * chain.block_size
        assert chain.total_backup_bytes() == full.nbytes


class TestRestore:
    def test_restore_matches_live_disk(self, byte_bed):
        chain = BackupChain(byte_bed.domain)
        chain.full_backup()
        write_blocks(byte_bed, [0, 10, 255])
        chain.incremental_backup()
        assert chain.restore().identical_to(live_vbd(byte_bed))

    def test_point_in_time_restore(self, byte_bed):
        chain = BackupChain(byte_bed.domain)
        chain.full_backup()
        write_blocks(byte_bed, [5])
        chain.incremental_backup()       # record 1
        write_blocks(byte_bed, [9])
        chain.incremental_backup()       # record 2

        old = chain.restore(upto=1)
        live = live_vbd(byte_bed)
        assert not old.identical_to(live)
        assert 9 in old.diff_blocks(live).tolist()
        assert chain.restore().identical_to(live)

    def test_restore_anchors_at_latest_full(self, byte_bed):
        chain = BackupChain(byte_bed.domain)
        chain.full_backup()
        write_blocks(byte_bed, [1])
        chain.incremental_backup()
        second_full = chain.full_backup()
        assert chain.restore().identical_to(live_vbd(byte_bed))
        assert second_full.seq == 2

    def test_restore_without_full_in_range_raises(self, byte_bed):
        chain = BackupChain(byte_bed.domain)
        with pytest.raises(PersistError, match="no full backup"):
            chain.restore()


class TestAcrossMigration:
    def test_chain_keeps_accumulating_across_migration(self, byte_bed):
        """The tp-qemu backup-with-migration scenario: deltas recorded on
        the source and on the destination land in one incremental."""
        chain = BackupChain(byte_bed.domain)
        chain.full_backup()
        write_blocks(byte_bed, [1, 2])

        report = byte_bed.migrate()
        assert report.consistency_verified
        assert byte_bed.domain.host is byte_bed.destination

        dest_driver = byte_bed.destination.driver_of(
            byte_bed.domain.domain_id)
        assert dest_driver.has_tracking(chain.tracking_name)

        write_blocks(byte_bed, [3, 4])
        inc = chain.incremental_backup()
        assert {1, 2, 3, 4} <= set(inc.indices.tolist())
        assert chain.restore().identical_to(live_vbd(byte_bed))


class TestCrashRecovery:
    def test_recover_tracking_after_host_crash(self, byte_bed):
        chain = BackupChain(byte_bed.domain)
        chain.full_backup()
        write_blocks(byte_bed, [10, 11])

        byte_bed.source.crash()
        byte_bed.source.restart()
        assert byte_bed.domain.running     # crash-suspended, then resumed

        info = chain.recover_tracking()
        assert info.pending_blocks >= 2
        assert chain.bitmap.recovered
        assert {10, 11} <= set(chain.bitmap.dirty_indices().tolist())

        inc = chain.incremental_backup()
        assert inc.recovered               # flagged: may over-approximate
        assert {10, 11} <= set(inc.indices.tolist())
        assert not chain.bitmap.recovered  # flag consumed by the backup
        assert chain.restore().identical_to(live_vbd(byte_bed))

    def test_recover_tracking_requires_recoverable_store(self, byte_bed):
        chain = BackupChain(byte_bed.domain)
        chain.close()                      # clean: nothing to recover
        with pytest.raises(PersistError, match="nothing to recover"):
            chain.recover_tracking()

    def test_recovery_never_undermarks_with_lazy_policy(self, byte_bed):
        chain = BackupChain(byte_bed.domain, policy="snapshot",
                            region_bits=16)
        chain.full_backup()
        write_blocks(byte_bed, [40, 41, 200])
        byte_bed.source.crash()            # staged journal tail lost
        byte_bed.source.restart()
        chain.recover_tracking()
        # Guard regions over-mark, never under-mark.
        assert {40, 41, 200} <= set(chain.bitmap.dirty_indices().tolist())
        inc = chain.incremental_backup()
        assert chain.restore().identical_to(live_vbd(byte_bed))
        assert inc.nblocks >= 3
