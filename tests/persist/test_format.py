"""Unit tests for the snapshot / journal-record codecs."""

import numpy as np
import pytest

from repro.errors import PersistError
from repro.persist import decode_record, decode_snapshot, encode_record, \
    encode_snapshot
from repro.persist.format import FLAG_CLEAN, FORMAT_VERSION, OP_CLEAR, OP_SET


class TestSnapshotCodec:
    def test_round_trip(self):
        bits = np.zeros(257, dtype=bool)  # deliberately not byte-aligned
        bits[[0, 7, 8, 100, 256]] = True
        out, seq, clean, gran = decode_snapshot(
            encode_snapshot(bits, seq=42, clean=False, granularity=512))
        assert np.array_equal(out, bits)
        assert seq == 42
        assert clean is False
        assert gran == 512

    def test_clean_flag_round_trips(self):
        bits = np.zeros(8, dtype=bool)
        _, _, clean, _ = decode_snapshot(encode_snapshot(bits, 0, clean=True))
        assert clean is True

    def test_empty_and_full_bitmaps(self):
        for bits in (np.zeros(100, dtype=bool), np.ones(100, dtype=bool)):
            out, _, _, _ = decode_snapshot(encode_snapshot(bits, 0))
            assert np.array_equal(out, bits)

    def test_rejects_bad_magic(self):
        data = encode_snapshot(np.ones(16, dtype=bool), 0)
        with pytest.raises(PersistError, match="magic"):
            decode_snapshot(b"XXXX" + data[4:])

    def test_rejects_newer_version(self):
        data = bytearray(encode_snapshot(np.ones(16, dtype=bool), 0))
        data[4] = FORMAT_VERSION + 1  # little-endian version field
        with pytest.raises(PersistError, match="newer"):
            decode_snapshot(bytes(data))

    def test_rejects_truncation(self):
        data = encode_snapshot(np.ones(64, dtype=bool), 0)
        for cut in (0, 4, len(data) - 1):
            with pytest.raises(PersistError):
                decode_snapshot(data[:cut])

    def test_rejects_any_flipped_byte(self):
        bits = np.zeros(128, dtype=bool)
        bits[[3, 64, 127]] = True
        data = encode_snapshot(bits, seq=7)
        for offset in range(len(data)):
            damaged = bytearray(data)
            damaged[offset] ^= 0xFF
            with pytest.raises(PersistError):
                decode_snapshot(bytes(damaged))

    def test_rejects_invalid_inputs(self):
        with pytest.raises(PersistError):
            encode_snapshot(np.empty(0, dtype=bool), 0)
        with pytest.raises(PersistError):
            encode_snapshot(np.ones(8, dtype=bool), seq=-1)

    def test_flag_clean_is_bit_zero(self):
        # The flag layout is part of the on-disk format contract.
        assert FLAG_CLEAN == 0x1


class TestRecordCodec:
    def test_round_trip(self):
        indices = np.array([0, 5, 1999], dtype=np.int64)
        seq, op, out = decode_record(encode_record(9, OP_SET, indices))
        assert (seq, op) == (9, OP_SET)
        assert np.array_equal(out, indices)

    def test_empty_batch_round_trips(self):
        seq, op, out = decode_record(
            encode_record(0, OP_CLEAR, np.empty(0, dtype=np.int64)))
        assert (seq, op) == (0, OP_CLEAR)
        assert out.size == 0

    def test_decoded_indices_are_writable(self):
        out = decode_record(encode_record(0, OP_SET,
                                          np.arange(4, dtype=np.int64)))[2]
        out[0] = 99  # must be a copy, not a frombuffer view
        assert out[0] == 99

    def test_rejects_unknown_opcode(self):
        with pytest.raises(PersistError, match="opcode"):
            encode_record(0, 99, np.empty(0, dtype=np.int64))
        data = bytearray(encode_record(0, OP_SET,
                                       np.empty(0, dtype=np.int64)))
        data[12] = 99  # opcode byte, after magic + 8-byte seq
        with pytest.raises(PersistError):
            decode_record(bytes(data))

    def test_rejects_any_flipped_byte(self):
        data = encode_record(3, OP_SET, np.array([1, 2, 3], dtype=np.int64))
        for offset in range(len(data)):
            damaged = bytearray(data)
            damaged[offset] ^= 0xFF
            with pytest.raises(PersistError):
                decode_record(bytes(damaged))

    def test_rejects_truncation(self):
        data = encode_record(0, OP_SET, np.arange(10, dtype=np.int64))
        with pytest.raises(PersistError):
            decode_record(data[:-3])

    def test_rejects_negative_sequence(self):
        with pytest.raises(PersistError):
            encode_record(-1, OP_SET, np.empty(0, dtype=np.int64))
