"""End-to-end crash recovery — the scenario the persistence layer exists
for: the *source host* dies mid-migration, restarts, recovers the
block-bitmap from its stable storage, and the retry completes
incrementally with fewer disk bytes than a from-scratch restart."""

from repro.core import TRACKING_NAME, MigrationRetrier
from repro.faults import FaultInjector, FaultPlan


class TestHostCrashLifecycle:
    def test_crash_and_restart_round_trip(self, bed):
        driver = bed.source.driver_of(bed.domain.domain_id)
        bed.source.crash()
        assert bed.source.crashed and driver.crashed
        assert not bed.domain.running
        bed.source.crash()                 # idempotent
        bed.source.restart()
        assert not bed.source.crashed and not driver.crashed
        assert bed.domain.running
        bed.source.restart()               # idempotent

    def test_crashed_driver_drops_writes_on_the_floor(self, bed):
        """No under-marking window: while the host is down, nothing may
        mutate disk or tracking state that recovery later trusts."""
        import numpy as np

        from repro.bitmap import FlatBitmap
        from repro.storage.block import IOKind, IORequest

        driver = bed.source.driver_of(bed.domain.domain_id)
        driver.start_tracking("t", FlatBitmap(bed.vbd.nblocks))
        before = bed.vbd.export_blocks(np.arange(4))[0].copy()
        bed.source.crash()                 # drops tracking, marks crashed
        driver.apply(IORequest(IOKind.WRITE, block=1, nblocks=2))
        assert not driver.has_tracking("t")
        after = bed.vbd.export_blocks(np.arange(4))[0]
        assert (before == after).all()     # the write never landed
        bed.source.restart()

    def test_store_registry_is_per_domain_and_purpose(self, bed):
        did = bed.domain.domain_id
        store = bed.source.bitmap_store(did)
        assert bed.source.bitmap_store(did) is store
        assert bed.source.bitmap_store(did, purpose="backup") is not store
        assert store.nbits == bed.vbd.nblocks
        assert not bed.source.has_recoverable_bitmap(did)

    def test_restart_recovers_precopy_store_into_tracking(self, bed):
        import numpy as np

        did = bed.domain.domain_id
        store = bed.source.bitmap_store(did)
        store.open_session(np.asarray([4, 5], dtype=np.int64))
        bed.source.crash()
        assert bed.source.has_recoverable_bitmap(did)
        bed.source.restart()
        driver = bed.source.driver_of(did)
        assert driver.has_tracking(TRACKING_NAME)
        survivor = driver.tracking_bitmap(TRACKING_NAME)
        assert survivor.recovered
        assert set(survivor.dirty_indices().tolist()) == {4, 5}

    def test_wait_until_up_blocks_until_restart(self, bed):
        bed.source.crash()
        seen = []

        def waiter(env):
            yield from bed.source.wait_until_up()
            seen.append(env.now)

        def restarter(env):
            yield env.timeout(1.5)
            bed.source.restart()

        bed.env.process(waiter(bed.env))
        bed.env.process(restarter(bed.env))
        bed.env.run()
        assert seen == [1.5]


class TestCrashRecoveryMigration:
    """The ISSUE's acceptance scenario, asserted end to end."""

    @staticmethod
    def run_crashy_migration(bed, persist):
        cfg = bed.config.replace(persist_bitmap=persist)
        bed.random_writer(region=(0, 300), interval=0.005, seed=11)
        plan = FaultPlan(send_timeout=0.05).crash("source", at=0.02,
                                                  down_for=0.5)
        FaultInjector(bed.env, plan).inject(bed.migrator)
        retrier = MigrationRetrier(bed.migrator, max_attempts=3,
                                   initial_backoff=0.3, incremental=True,
                                   wait_for_restart=True)
        proc = retrier.migrate_process(bed.domain, bed.destination, cfg)
        return bed.env.run(until=proc)

    @staticmethod
    def disk_bytes_all_attempts(report):
        attempts = list(report.failed_attempts) + [report]
        return sum(r.bytes_by_category.get("disk", 0) for r in attempts)

    def test_source_crash_recovers_bitmap_and_resumes(self, make_bed):
        bed = make_bed()
        report = self.run_crashy_migration(bed, persist=True)
        assert report.attempts == 2
        assert report.consistency_verified
        assert bed.domain.host is bed.destination
        # The failed attempt flagged its recovery state as persisted...
        failed = report.failed_attempts[0]
        assert failed.extra.get("persisted_bitmap_recoverable") is True
        # ...and the retry really did resume from the recovered bitmap.
        assert report.extra.get("recovered_from_persistence") is True

    def test_persisted_retry_beats_scratch_on_disk_bytes(self, make_bed):
        """Acceptance criterion: after a full source crash, the persisted
        bitmap still yields an incremental retry; without persistence the
        crash destroys the tracking state and the retry re-sends the
        whole device."""
        persisted = self.run_crashy_migration(make_bed(), persist=True)
        scratch = self.run_crashy_migration(make_bed(), persist=False)
        assert persisted.attempts == scratch.attempts == 2
        assert scratch.consistency_verified
        assert not scratch.extra.get("recovered_from_persistence")
        assert (self.disk_bytes_all_attempts(persisted)
                < self.disk_bytes_all_attempts(scratch))

    def test_clean_migration_completes_the_store(self, make_bed):
        """No crash: the store is marked clean at commit, so a later crash
        has nothing (stale) to recover."""
        bed = make_bed()
        cfg = bed.config.replace(persist_bitmap=True)
        report = bed.migrate(cfg)
        assert report.consistency_verified
        assert not report.extra.get("recovered_from_persistence")
        did = bed.domain.domain_id
        assert not bed.source.has_recoverable_bitmap(did)

    def test_persistence_does_not_change_migration_numbers(self, make_bed):
        """Zero-simulated-cost criterion: persist_bitmap=True must not
        perturb a fault-free migration's reported numbers at all."""
        reports = {}
        for persist in (False, True):
            bed = make_bed()
            bed.random_writer(region=(0, 400), interval=0.004, seed=5)
            reports[persist] = bed.migrate(
                bed.config.replace(persist_bitmap=persist))
        plain, persisted = reports[False], reports[True]
        assert plain.migrated_bytes == persisted.migrated_bytes
        assert plain.bytes_by_category == persisted.bytes_by_category
        assert plain.total_migration_time == persisted.total_migration_time
        assert plain.downtime == persisted.downtime
        assert (plain.remaining_dirty_blocks
                == persisted.remaining_dirty_blocks)
