"""Property-based tests of the persistence layer's one load-bearing
invariant:

    **recovered ⊇ true-pending**, for every sync policy, every crash
    point, and every damage pattern the stable storage can produce.

A model bitmap (plain numpy) tracks the true pending set alongside the
store; hypothesis drives randomized set/clear/flush/snapshot schedules,
crashes the store at an arbitrary boundary, optionally corrupts durable
state, and recovery must never report a truly-pending block as clean."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.persist import BitmapStore, SYNC_POLICIES
from repro.persist.store import AREA_GUARD, AREA_SNAPSHOT

NBITS = 301  # deliberately not a multiple of any region size


@st.composite
def schedules(draw):
    """A random journaling schedule: (op, payload) steps."""
    steps = []
    for _ in range(draw(st.integers(0, 25))):
        kind = draw(st.sampled_from(
            ["set", "set", "set", "clear", "flush", "snapshot"]))
        if kind in ("set", "clear"):
            idx = draw(st.lists(st.integers(0, NBITS - 1),
                                min_size=0, max_size=12))
            steps.append((kind, np.array(idx, dtype=np.int64)))
        else:
            steps.append((kind, None))
    return steps


@st.composite
def store_params(draw):
    return dict(
        policy=draw(st.sampled_from(SYNC_POLICIES)),
        flush_every=draw(st.sampled_from([1, 2, 8, 64])),
        region_bits=draw(st.sampled_from([1, 7, 16, 128, NBITS, 4096])),
        snapshot_every=draw(st.sampled_from([3, 17, 4096])),
    )


def run_schedule(store, model, steps):
    """Apply the schedule to the store and the true-pending model alike."""
    for kind, payload in steps:
        if kind == "set":
            if payload.size:
                store.record_set(payload)
                model[payload] = True
        elif kind == "clear":
            if payload.size:
                store.record_clear(payload)
                model[payload] = False
        elif kind == "flush":
            store.flush()
        else:
            store.snapshot()


class TestRecoveryNeverUndermarks:
    @given(params=store_params(), steps=schedules(),
           initial=st.one_of(st.none(),
                             st.lists(st.integers(0, NBITS - 1),
                                      max_size=20)))
    @settings(max_examples=120, deadline=None)
    def test_crash_at_end_of_schedule(self, params, steps, initial):
        store = BitmapStore(NBITS, **params)
        model = np.zeros(NBITS, dtype=bool)
        if initial is None:
            store.open_session(None)
            model[:] = True
        else:
            idx = np.array(initial, dtype=np.int64)
            store.open_session(idx)
            model[idx] = True
        run_schedule(store, model, steps)
        store.crash()
        recovered, info = store.recover()
        got = recovered.to_bool_array()
        assert not (model & ~got).any(), \
            "recovery under-marked truly-pending blocks"
        if info.exact:
            assert (got == model).all()
        assert info.pending_blocks == int(got.sum())

    @given(params=store_params(), steps=schedules(),
           crash_after=st.integers(0, 25))
    @settings(max_examples=120, deadline=None)
    def test_crash_at_every_schedule_boundary(self, params, steps,
                                              crash_after):
        """The crash can land between ANY two journal/snapshot operations;
        the prefix actually applied is the truth recovery must cover."""
        store = BitmapStore(NBITS, **params)
        model = np.zeros(NBITS, dtype=bool)
        store.open_session(np.empty(0, dtype=np.int64))
        run_schedule(store, model, steps[:crash_after])
        store.crash()
        recovered, _info = store.recover()
        assert not (model & ~recovered.to_bool_array()).any()

    @given(params=store_params(), steps=schedules(),
           damage=st.sampled_from(["snapshot", "guard", "record"]),
           offset=st.integers(0, 5000), pos=st.integers(0, 30))
    @settings(max_examples=120, deadline=None)
    def test_corruption_still_never_undermarks(self, params, steps, damage,
                                               offset, pos):
        """Flipping bytes in durable state may cost accuracy (up to
        all-dirty), never safety."""
        store = BitmapStore(NBITS, **params)
        model = np.zeros(NBITS, dtype=bool)
        store.open_session(None)
        model[:] = True
        run_schedule(store, model, steps)
        store.crash()
        if damage == "snapshot":
            store.storage.corrupt_area(AREA_SNAPSHOT, offset)
        elif damage == "guard" and store.storage.read_area(AREA_GUARD):
            store.storage.corrupt_area(AREA_GUARD, offset)
        elif damage == "record" and store.storage.record_count:
            store.storage.corrupt_record(pos % store.storage.record_count,
                                         offset)
        # A session left open is never clean, so recover() must always
        # produce a bitmap here -- corruption degrades, never refuses.
        recovered, info = store.recover()
        got = recovered.to_bool_array()
        assert not (model & ~got).any()
        if info.source != "journal":
            assert got.all()               # conservative all-dirty

    @given(params=store_params(), steps_a=schedules(), steps_b=schedules())
    @settings(max_examples=60, deadline=None)
    def test_journaling_continues_after_recovery(self, params, steps_a,
                                                 steps_b):
        """Recovery re-baselines the store: a second schedule + second
        crash still recovers a superset of the truth."""
        store = BitmapStore(NBITS, **params)
        model = np.zeros(NBITS, dtype=bool)
        store.open_session(np.empty(0, dtype=np.int64))
        run_schedule(store, model, steps_a)
        store.crash()
        recovered, _ = store.recover()
        # The recovered state (a superset) becomes the new truth baseline.
        model = recovered.to_bool_array().copy()
        run_schedule(store, model, steps_b)
        store.crash()
        final, _ = store.recover()
        assert not (model & ~final.to_bool_array()).any()


class TestWalExactness:
    @given(steps=schedules())
    @settings(max_examples=80, deadline=None)
    def test_wal_recovery_equals_the_truth(self, steps):
        """Under WAL every record is durable before it is acknowledged, so
        a crash loses nothing and recovery is bit-exact."""
        store = BitmapStore(NBITS, policy="wal")
        model = np.zeros(NBITS, dtype=bool)
        store.open_session(np.empty(0, dtype=np.int64))
        run_schedule(store, model, steps)
        store.crash()
        recovered, info = store.recover()
        assert (recovered.to_bool_array() == model).all()
        assert info.exact
        assert info.overmarked_blocks == 0
