"""Property-based tests on the migration core's central invariants.

The load-bearing property of the whole paper: after TPM completes, every
destination block either equals the source block or was legitimately
overwritten by the guest on the destination (and is then marked in the IM
bitmap).  We drive randomized workloads through full migrations and check
it holds for every schedule hypothesis finds.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import IM_TRACKING_NAME, MigrationConfig, Migrator
from repro.sim import Environment
from repro.storage import GenerationClock, PhysicalDisk
from repro.units import MB, MiB
from repro.vm import Domain, GuestMemory, Host

NBLOCKS = 600
NPAGES = 128


def build(seed_cfg):
    env = Environment()
    clock = GenerationClock()
    cfg = MigrationConfig(chunk_blocks=seed_cfg["chunk_blocks"],
                          disk_dirty_threshold_blocks=8,
                          mem_dirty_threshold_pages=8,
                          mem_chunk_pages=64,
                          push_chunk_blocks=seed_cfg["push_chunk"],
                          bitmap_layout=seed_cfg["layout"],
                          suspend_overhead=0.0, resume_overhead=0.0)
    src = Host(env, "src", PhysicalDisk(env, 100 * MiB, 100 * MiB, 0.1e-3),
               clock)
    dst = Host(env, "dst", PhysicalDisk(env, 100 * MiB, 100 * MiB, 0.1e-3),
               clock)
    vbd = src.prepare_vbd(NBLOCKS)
    vbd.write(0, NBLOCKS)
    domain = Domain(env, GuestMemory(NPAGES, clock=clock))
    src.attach_domain(domain, vbd)
    migrator = Migrator(env, cfg)
    migrator.connect(src, dst, bandwidth=125 * MB, latency=50e-6)
    return env, src, dst, domain, migrator, cfg


workload_params = st.fixed_dictionaries({
    "seed": st.integers(0, 10_000),
    "interval": st.sampled_from([0.001, 0.003, 0.01]),
    "nblocks": st.integers(1, 8),
    "region": st.integers(20, NBLOCKS),
    "read_mix": st.booleans(),
})

config_params = st.fixed_dictionaries({
    "chunk_blocks": st.sampled_from([32, 128, 512]),
    "push_chunk": st.sampled_from([1, 4, 16]),
    "layout": st.sampled_from(["flat", "layered"]),
})


def guest_process(env, domain, params):
    rng = np.random.default_rng(params["seed"])

    def proc(env):
        while True:
            yield from domain.ensure_running()
            block = int(rng.integers(0, params["region"] - params["nblocks"] + 1))
            yield from domain.write(block, params["nblocks"])
            if params["read_mix"]:
                yield from domain.read(
                    int(rng.integers(0, NBLOCKS - 1)))
            yield from domain.ensure_running()
            domain.touch_memory(rng.integers(0, NPAGES, size=4))
            yield env.timeout(params["interval"])

    return env.process(proc(env))


class TestMigrationInvariants:
    @given(workload_params, config_params)
    @settings(max_examples=20, deadline=None)
    def test_consistency_modulo_guest_writes(self, wl, cfg_params):
        env, src, dst, domain, migrator, cfg = build(cfg_params)
        guest_process(env, domain, wl)
        src_vbd = src.vbd_of(domain.domain_id)
        proc = migrator.migrate_process(domain, dst)
        report = env.run(until=proc)

        # The invariant (also enforced internally by verify_consistency):
        dst_vbd = dst.vbd_of(domain.domain_id)
        im = dst.driver_of(domain.domain_id).tracking_bitmap(IM_TRACKING_NAME)
        diff = src_vbd.diff_blocks(dst_vbd)
        assert set(diff.tolist()) <= set(im.dirty_indices().tolist())
        assert report.consistency_verified
        # Downtime is always a small fraction of total time (live migration).
        assert report.downtime < report.total_migration_time

    @given(workload_params, config_params)
    @settings(max_examples=10, deadline=None)
    def test_round_trip_preserves_consistency(self, wl, cfg_params):
        env, src, dst, domain, migrator, cfg = build(cfg_params)
        guest_process(env, domain, wl)
        p1 = migrator.migrate_process(domain, dst)
        env.run(until=p1)
        env.run(until=env.now + 0.5)
        p2 = migrator.migrate_process(domain, src)
        back = env.run(until=p2)
        assert back.incremental
        assert back.consistency_verified

    @given(workload_params)
    @settings(max_examples=10, deadline=None)
    def test_migrated_data_bounded_below_by_state_size(self, wl):
        env, src, dst, domain, migrator, cfg = build(
            {"chunk_blocks": 128, "push_chunk": 8, "layout": "flat"})
        guest_process(env, domain, wl)
        proc = migrator.migrate_process(domain, dst)
        report = env.run(until=proc)
        state_size = NBLOCKS * 4096 + NPAGES * 4096
        assert report.migrated_bytes >= state_size
