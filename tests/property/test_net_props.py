"""Property-based tests on the network substrate's guarantees."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.net import (
    BlockDataMsg,
    Channel,
    Compressor,
    ControlMsg,
    Link,
    TokenBucket,
)
from repro.sim import Environment
from repro.units import MB


message_batch = st.lists(
    st.one_of(
        st.integers(1, 2000).map(
            lambda n: BlockDataMsg(np.arange(n), np.arange(n))),
        st.text(alphabet="abcdefgh", min_size=1, max_size=8).map(
            lambda t: ControlMsg(t)),
    ),
    min_size=1, max_size=12)


class TestChannelFifo:
    @given(message_batch,
           st.one_of(st.none(), st.floats(min_value=1.01, max_value=8.0)))
    @settings(max_examples=40, deadline=None)
    def test_delivery_order_matches_send_order(self, messages, ratio):
        """FIFO holds for any message mix, with or without compression."""
        env = Environment()
        compressor = Compressor(ratio=ratio) if ratio else None
        chan = Channel(env, Link(env, 100 * MB, 1e-4),
                       compressor=compressor)
        tags = []

        def sender(env):
            for i, msg in enumerate(messages):
                yield from chan.send(msg, category="x")

        def receiver(env):
            for _ in messages:
                msg = yield chan.recv()
                tags.append(id(msg))

        env.process(sender(env))
        env.process(receiver(env))
        env.run()
        assert tags == [id(m) for m in messages]

    @given(message_batch)
    @settings(max_examples=30, deadline=None)
    def test_ledger_equals_sum_of_wire_sizes(self, messages):
        env = Environment()
        chan = Channel(env, Link(env, 100 * MB, 0))

        def sender(env):
            for msg in messages:
                yield from chan.send(msg, category="x")

        env.run(until=env.process(sender(env)))
        assert chan.total_bytes == sum(m.wire_nbytes for m in messages)
        assert chan.messages_sent == len(messages)

    @given(message_batch, st.floats(min_value=1.5, max_value=8.0))
    @settings(max_examples=30, deadline=None)
    def test_compression_never_grows_the_ledger(self, messages, ratio):
        plain = sum(m.wire_nbytes for m in messages)
        env = Environment()
        chan = Channel(env, Link(env, 100 * MB, 0),
                       compressor=Compressor(ratio=ratio))

        def sender(env):
            for msg in messages:
                yield from chan.send(msg, category="x")

        env.run(until=env.process(sender(env)))
        assert chan.total_bytes <= plain
        assert chan.total_bytes + chan.bytes_saved == plain


class TestTokenBucketConformance:
    @given(st.floats(min_value=1e4, max_value=1e7),
           st.lists(st.integers(1, 500_000), min_size=3, max_size=25))
    @settings(max_examples=40, deadline=None)
    def test_long_run_rate_never_exceeded(self, rate, sizes):
        """Total bytes through the bucket never exceed burst + rate*t."""
        env = Environment()
        bucket = TokenBucket(env, rate=rate, burst=rate)

        def consumer(env):
            for n in sizes:
                yield from bucket.consume(n)
            return env.now

        elapsed = env.run(until=env.process(consumer(env)))
        total = sum(sizes)
        # Allow the initial burst plus the refill over the elapsed time.
        assert total <= bucket.burst + rate * elapsed + 1e-6

    @given(st.floats(min_value=1e4, max_value=1e6))
    @settings(max_examples=20, deadline=None)
    def test_sustained_throughput_approaches_rate(self, rate):
        env = Environment()
        bucket = TokenBucket(env, rate=rate, burst=rate / 10)
        chunk = int(rate / 5)
        rounds = 50

        def consumer(env):
            for _ in range(rounds):
                yield from bucket.consume(chunk)
            return env.now

        elapsed = env.run(until=env.process(consumer(env)))
        achieved = rounds * chunk / elapsed
        assert achieved <= rate * 1.05
        assert achieved >= rate * 0.8
