"""Property-based tests: flat and layered bitmaps are observationally equal,
and bitmap algebra obeys its invariants."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.bitmap import FlatBitmap, LayeredBitmap, granularity_cost
from repro.units import KiB

NBITS = 257  # deliberately not a multiple of any leaf size


@st.composite
def operations(draw):
    """A random sequence of bitmap operations."""
    ops = []
    for _ in range(draw(st.integers(0, 30))):
        kind = draw(st.sampled_from(
            ["set", "clear", "set_many", "clear_many", "set_range",
             "reset", "set_all"]))
        if kind in ("set", "clear"):
            ops.append((kind, draw(st.integers(0, NBITS - 1))))
        elif kind in ("set_many", "clear_many"):
            idx = draw(st.lists(st.integers(0, NBITS - 1), max_size=20))
            ops.append((kind, np.array(idx, dtype=np.int64)))
        elif kind == "set_range":
            start = draw(st.integers(0, NBITS - 1))
            count = draw(st.integers(0, NBITS - start))
            ops.append((kind, (start, count)))
        else:
            ops.append((kind, None))
    return ops


def apply_ops(bitmap, ops):
    for kind, arg in ops:
        if kind in ("set", "clear"):
            getattr(bitmap, kind)(arg)
        elif kind in ("set_many", "clear_many"):
            getattr(bitmap, kind)(arg)
        elif kind == "set_range":
            bitmap.set_range(*arg)
        else:
            getattr(bitmap, kind)()


class TestLayeredEquivalence:
    @given(operations(), st.sampled_from([16, 64, 100, 257, 1000]))
    @settings(max_examples=80)
    def test_layered_matches_flat(self, ops, leaf_bits):
        flat = FlatBitmap(NBITS)
        layered = LayeredBitmap(NBITS, leaf_bits=leaf_bits)
        apply_ops(flat, ops)
        apply_ops(layered, ops)
        assert np.array_equal(flat.to_bool_array(), layered.to_bool_array())
        assert flat.count() == layered.count()
        assert np.array_equal(flat.dirty_indices(), layered.dirty_indices())

    @given(operations())
    @settings(max_examples=40)
    def test_copy_preserves_and_isolates(self, ops):
        original = LayeredBitmap(NBITS, leaf_bits=64)
        apply_ops(original, ops)
        clone = original.copy()
        assert np.array_equal(original.to_bool_array(), clone.to_bool_array())
        clone.set_all()
        original_count = original.count()
        assert original_count <= NBITS  # untouched by the clone mutation
        assert clone.count() == NBITS


class TestAlgebra:
    @given(operations(), operations())
    @settings(max_examples=50)
    def test_union_is_elementwise_or(self, ops_a, ops_b):
        a, b = FlatBitmap(NBITS), FlatBitmap(NBITS)
        apply_ops(a, ops_a)
        apply_ops(b, ops_b)
        expected = a.to_bool_array() | b.to_bool_array()
        a.union_update(b)
        assert np.array_equal(a.to_bool_array(), expected)

    @given(operations())
    @settings(max_examples=50)
    def test_count_equals_dirty_indices_length(self, ops):
        bm = LayeredBitmap(NBITS, leaf_bits=50)
        apply_ops(bm, ops)
        assert bm.count() == bm.dirty_indices().size

    @given(operations())
    @settings(max_examples=50)
    def test_pack_unpack_roundtrip(self, ops):
        bm = FlatBitmap(NBITS)
        apply_ops(bm, ops)
        restored = FlatBitmap.unpack(bm.pack(), NBITS)
        assert np.array_equal(bm.to_bool_array(), restored.to_bool_array())

    @given(operations())
    @settings(max_examples=50)
    def test_layered_wire_size_never_exceeds_flat_plus_top(self, ops):
        layered = LayeredBitmap(NBITS, leaf_bits=64)
        apply_ops(layered, ops)
        flat_size = FlatBitmap(NBITS).serialized_nbytes()
        top_size = (layered._nleaves + 7) // 8
        assert layered.serialized_nbytes() <= flat_size + top_size


class TestWordOps:
    """The word-view merges (union/difference/intersection) must behave
    exactly like elementwise boolean algebra, keep the cached count and
    ``dirty_indices`` coherent, and never disturb the padded backing."""

    @given(operations(), operations(),
           st.lists(st.sampled_from(["union_update", "difference_update",
                                     "intersection_update"]), max_size=4))
    @settings(max_examples=60)
    def test_merge_sequence_matches_elementwise(self, ops_a, ops_b, merges):
        a, b = FlatBitmap(NBITS), FlatBitmap(NBITS)
        apply_ops(a, ops_a)
        apply_ops(b, ops_b)
        expected = a.to_bool_array()
        other = b.to_bool_array()
        for merge in merges:
            a.count(), a.dirty_indices()  # prime the caches
            getattr(a, merge)(b)
            if merge == "union_update":
                expected = expected | other
            elif merge == "difference_update":
                expected = expected & ~other
            else:
                expected = expected & other
            # The satellite invariant: cached dirty_indices always equals
            # a fresh scan of the live bits after any vectorized mutation.
            assert np.array_equal(a.dirty_indices(),
                                  np.flatnonzero(a._bits))
            assert np.array_equal(a.to_bool_array(), expected)
            assert a.count() == int(expected.sum())

    @given(operations())
    @settings(max_examples=60)
    def test_dirty_indices_matches_flatnonzero_after_every_op(self, ops):
        bm = FlatBitmap(NBITS)
        for op in ops:
            apply_ops(bm, [op])
            assert np.array_equal(bm.dirty_indices(),
                                  np.flatnonzero(bm._bits))
            assert bm.count() == int(bm._bits.sum())

    @given(operations(), operations())
    @settings(max_examples=40)
    def test_flat_merges_match_layered_defaults(self, ops_a, ops_b):
        fa, fb = FlatBitmap(NBITS), FlatBitmap(NBITS)
        la, lb = (LayeredBitmap(NBITS, leaf_bits=64),
                  LayeredBitmap(NBITS, leaf_bits=64))
        for bm in (fa, la):
            apply_ops(bm, ops_a)
        for bm in (fb, lb):
            apply_ops(bm, ops_b)
        fa.difference_update(fb)
        la.difference_update(lb)
        assert np.array_equal(fa.to_bool_array(), la.to_bool_array())
        fa.intersection_update(fb)
        la.intersection_update(lb)
        assert np.array_equal(fa.to_bool_array(), la.to_bool_array())

    @given(operations(), operations())
    @settings(max_examples=40)
    def test_padding_bytes_stay_zero(self, ops_a, ops_b):
        a, b = FlatBitmap(NBITS), FlatBitmap(NBITS)
        apply_ops(a, ops_a)
        apply_ops(b, ops_b)
        a.union_update(b)
        a.difference_update(b)
        a.intersection_update(b)
        padding = a._words.view(bool)[NBITS:]
        assert not padding.any()

    @given(st.lists(st.integers(0, NBITS - 1), max_size=30),
           st.lists(st.integers(0, NBITS - 1), max_size=30))
    @settings(max_examples=60)
    def test_union_indices_matches_union1d(self, first, second):
        from repro.bitmap import union_indices
        a = np.array(first, dtype=np.int64)
        b = np.array(second, dtype=np.int64)
        assert np.array_equal(union_indices(NBITS, a, b),
                              np.union1d(a, b))


class TestGranularityProperties:
    @given(st.lists(
        st.tuples(st.integers(0, 900_000), st.integers(1, 60_000)),
        max_size=15))
    @settings(max_examples=50)
    def test_amplification_at_least_one(self, raw_writes):
        disk = 1_000_000
        writes = [(o, min(l, disk - o)) for o, l in raw_writes if o < disk]
        writes = [(o, l) for o, l in writes if l > 0]
        cost = granularity_cost(writes, disk, 4 * KiB)
        assert cost.amplification >= 1.0 - 1e-9

    @given(st.lists(
        st.tuples(st.integers(0, 900_000), st.integers(1, 60_000)),
        max_size=15))
    @settings(max_examples=50)
    def test_finer_granularity_smaller_or_equal_dirty_bytes(self, raw_writes):
        disk = 1_000_000
        writes = [(o, min(l, disk - o)) for o, l in raw_writes if o < disk]
        writes = [(o, l) for o, l in writes if l > 0]
        fine = granularity_cost(writes, disk, 512)
        coarse = granularity_cost(writes, disk, 4 * KiB)
        assert fine.dirty_bytes <= coarse.dirty_bytes
        assert fine.bitmap_nbytes >= coarse.bitmap_nbytes


class TestCachedObservations:
    """The incremental count and cached dirty_indices must stay coherent
    when observations are interleaved with arbitrary mutations — the
    surface the caching fast paths could get wrong."""

    @given(operations(), st.sampled_from([16, 64, 100, 257]))
    @settings(max_examples=60)
    def test_observing_between_every_mutation(self, ops, leaf_bits):
        flat = FlatBitmap(NBITS)
        layered = LayeredBitmap(NBITS, leaf_bits=leaf_bits)
        probe = np.arange(0, NBITS, 7, dtype=np.int64)
        for op in ops:
            apply_ops(flat, [op])
            apply_ops(layered, [op])
            # Every observation in between primes (and must invalidate)
            # the cached count/indices.
            assert flat.count() == layered.count()
            assert np.array_equal(flat.dirty_indices(),
                                  layered.dirty_indices())
            assert np.array_equal(flat.test_many(probe),
                                  layered.test_many(probe))
        assert flat.count() == flat.dirty_indices().size

    @given(operations(), operations())
    @settings(max_examples=40)
    def test_union_update_invalidates_caches(self, ops_a, ops_b):
        a, b = FlatBitmap(NBITS), FlatBitmap(NBITS)
        apply_ops(a, ops_a)
        apply_ops(b, ops_b)
        expected = a.to_bool_array() | b.to_bool_array()
        a.count(), a.dirty_indices()  # prime the caches
        a.union_update(b)
        assert a.count() == int(expected.sum())
        assert np.array_equal(a.dirty_indices(), np.flatnonzero(expected))

    @given(operations())
    @settings(max_examples=40)
    def test_dirty_indices_survive_later_mutation(self, ops):
        bm = FlatBitmap(NBITS)
        apply_ops(bm, ops)
        snapshot = bm.dirty_indices().copy()
        before = bm.dirty_indices()
        bm.set_range(0, NBITS)  # mutate after handing out indices
        # The array handed out earlier must not be corrupted in place.
        assert np.array_equal(before, snapshot)
        assert bm.count() == NBITS
