"""Property-based tests on the discrete-event engine's ordering guarantees."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.sim import Environment, Resource, Store


class TestEventOrdering:
    @given(st.lists(st.floats(min_value=0, max_value=100,
                              allow_nan=False), max_size=40))
    @settings(max_examples=60)
    def test_timeouts_fire_in_time_order(self, delays):
        env = Environment()
        fired = []
        for d in delays:
            env.timeout(d).callbacks.append(
                lambda e, d=d: fired.append(env.now))
        env.run()
        assert fired == sorted(fired)
        if delays:
            assert env.now == max(delays)

    @given(st.lists(st.floats(min_value=0, max_value=10,
                              allow_nan=False), min_size=1, max_size=20))
    @settings(max_examples=60)
    def test_clock_never_goes_backwards(self, delays):
        env = Environment()
        observed = []

        def proc(env, d):
            yield env.timeout(d)
            observed.append(env.now)

        for d in delays:
            env.process(proc(env, d))
        env.run()
        assert observed == sorted(observed)

    @given(st.integers(1, 5), st.lists(st.floats(min_value=0.01, max_value=2,
                                                 allow_nan=False),
                                       min_size=1, max_size=15))
    @settings(max_examples=40)
    def test_resource_never_exceeds_capacity(self, capacity, durations):
        env = Environment()
        res = Resource(env, capacity=capacity)
        active = [0]
        peak = [0]

        def user(env, hold):
            with res.request() as req:
                yield req
                active[0] += 1
                peak[0] = max(peak[0], active[0])
                yield env.timeout(hold)
                active[0] -= 1

        for hold in durations:
            env.process(user(env, hold))
        env.run()
        assert peak[0] <= capacity
        assert active[0] == 0

    @given(st.lists(st.integers(0, 1000), max_size=30))
    @settings(max_examples=60)
    def test_store_is_fifo(self, items):
        env = Environment()
        store = Store(env)
        received = []

        def producer(env):
            for item in items:
                yield store.put(item)

        def consumer(env):
            for _ in items:
                value = yield store.get()
                received.append(value)

        env.process(producer(env))
        env.process(consumer(env))
        env.run()
        assert received == items
