"""Link-level behaviour of the fault injector: blackouts, degradation
windows, send timeouts, crashes, and the zero-cost detach path."""

import pytest

from repro.errors import FaultError, NetworkError
from repro.faults import FaultInjector, FaultPlan
from repro.net import DuplexLink, Link
from repro.sim import Environment
from repro.units import MB


@pytest.fixture
def env():
    return Environment()


def transmit(env, link, nbytes):
    """Run one transmit to completion; returns (elapsed, error-or-None)."""
    outcome = {"error": None}

    def proc(env):
        try:
            yield from link.transmit(nbytes)
        except NetworkError as exc:
            outcome["error"] = exc

    started = env.now
    p = env.process(proc(env))
    env.run(until=p)
    return env.now - started, outcome["error"]


class TestBlackout:
    def test_short_blackout_delays_but_delivers(self, env):
        link = Link(env, bandwidth=1 * MB, latency=0.0)
        state = FaultInjector(env, FaultPlan(send_timeout=1.0))\
            ._state_for(link)
        state.add_blackout(0.0, 0.1)
        elapsed, error = transmit(env, link, 1 * MB)
        assert error is None
        assert elapsed == pytest.approx(0.1 + 1.0)  # stall + serialization

    def test_long_blackout_times_out(self, env):
        link = Link(env, bandwidth=1 * MB, latency=0.0)
        state = FaultInjector(env, FaultPlan(send_timeout=0.25))\
            ._state_for(link)
        state.add_blackout(0.0, 10.0)
        elapsed, error = transmit(env, link, 1 * MB)
        assert error is not None
        assert "timed out" in str(error)
        # Failure detection costs exactly the timeout, never less.
        assert elapsed == pytest.approx(0.25)
        assert state.timed_out_sends == 1

    def test_chained_blackouts_share_timeout_budget(self, env):
        link = Link(env, bandwidth=1 * MB, latency=0.0)
        state = FaultInjector(env, FaultPlan(send_timeout=0.25))\
            ._state_for(link)
        # Two adjacent windows, each under the timeout, together over it.
        state.add_blackout(0.0, 0.15)
        state.add_blackout(0.15, 0.30)
        elapsed, error = transmit(env, link, 1 * MB)
        assert error is not None
        assert elapsed == pytest.approx(0.25)

    def test_transmit_after_window_is_clean(self, env):
        link = Link(env, bandwidth=1 * MB, latency=0.0)
        state = FaultInjector(env, FaultPlan(send_timeout=0.25))\
            ._state_for(link)
        state.add_blackout(0.0, 0.1)
        env.run(until=0.5)
        elapsed, error = transmit(env, link, 1 * MB)
        assert error is None
        assert elapsed == pytest.approx(1.0)


class TestDegradation:
    def test_bandwidth_factor_stretches_serialization(self, env):
        link = Link(env, bandwidth=1 * MB, latency=0.0)
        state = FaultInjector(env, FaultPlan())._state_for(link)
        state.add_degradation(0.0, 100.0, 0.5, 0.0)
        elapsed, error = transmit(env, link, 1 * MB)
        assert error is None
        assert elapsed == pytest.approx(2.0)  # half rate, double time

    def test_overlapping_factors_multiply(self, env):
        link = Link(env, bandwidth=1 * MB, latency=0.0)
        state = FaultInjector(env, FaultPlan())._state_for(link)
        state.add_degradation(0.0, 100.0, 0.5, 0.0)
        state.add_degradation(0.0, 100.0, 0.5, 0.0)
        assert state.bandwidth_factor(0.0) == pytest.approx(0.25)

    def test_extra_latency_raises_effective_latency(self, env):
        link = Link(env, bandwidth=1 * MB, latency=1e-3)
        state = FaultInjector(env, FaultPlan())._state_for(link)
        state.add_degradation(0.0, 100.0, 1.0, 5e-3)
        assert link.effective_latency == pytest.approx(6e-3)
        env.run(until=200.0)
        assert link.effective_latency == pytest.approx(1e-3)


class TestAttachDetach:
    def test_attach_installs_time_triggered_windows(self, env):
        duplex = DuplexLink(env, 1 * MB, 0.0)
        plan = FaultPlan(send_timeout=0.25).blackout(duration=10.0, at=0.0)
        FaultInjector(env, plan).attach(duplex)
        _elapsed, error = transmit(env, duplex.forward, 1 * MB)
        assert error is not None

    def test_direction_filter(self, env):
        duplex = DuplexLink(env, 1 * MB, 0.0)
        plan = (FaultPlan(send_timeout=0.25)
                .blackout(duration=10.0, at=0.0, direction="forward"))
        FaultInjector(env, plan).attach(duplex)
        _e, fwd_error = transmit(env, duplex.forward, 1 * MB)
        _e, rev_error = transmit(env, duplex.backward, 1 * MB)
        assert fwd_error is not None
        assert rev_error is None

    def test_second_attach_gets_time_triggered_windows_too(self, env):
        plan = FaultPlan(send_timeout=0.25).blackout(duration=10.0, at=0.0)
        injector = FaultInjector(env, plan)
        injector.attach(DuplexLink(env, 1 * MB, 0.0))
        late = DuplexLink(env, 1 * MB, 0.0)
        injector.attach(late)
        _e, error = transmit(env, late.forward, 1 * MB)
        assert error is not None

    def test_detach_restores_fast_path(self, env):
        duplex = DuplexLink(env, 1 * MB, 0.0)
        plan = FaultPlan(send_timeout=0.25).blackout(duration=10.0, at=0.0)
        injector = FaultInjector(env, plan).attach(duplex)
        injector.detach()
        assert duplex.forward.faults is None
        assert duplex.backward.faults is None
        _e, error = transmit(env, duplex.forward, 1 * MB)
        assert error is None


class TestPhaseTriggers:
    def test_phase_blackout_fires_once(self, env):
        duplex = DuplexLink(env, 1 * MB, 0.0)
        plan = (FaultPlan(send_timeout=0.25)
                .blackout(duration=0.5, phase="precopy-disk"))
        injector = FaultInjector(env, plan).attach(duplex)
        injector.on_phase("freeze")  # wrong phase: nothing installed
        assert not injector.log
        injector.on_phase("precopy-disk")
        assert len(injector.log) == 1
        injector.on_phase("precopy-disk")  # one-shot
        assert len(injector.log) == 1

    def test_phase_offset_delays_window(self, env):
        duplex = DuplexLink(env, 1 * MB, 0.0)
        plan = (FaultPlan(send_timeout=0.25)
                .blackout(duration=0.5, phase="precopy-disk", offset=1.0))
        injector = FaultInjector(env, plan).attach(duplex)
        injector.on_phase("precopy-disk")
        state = duplex.forward.faults
        assert state.blackout_until(0.5) is None       # before the window
        assert state.blackout_until(1.2) == pytest.approx(1.5)


class TestCrash:
    def test_crash_marks_host_and_darkens_links(self, env, bed=None):
        from repro.core import Migrator
        from repro.storage import GenerationClock
        from repro.vm import Host

        clock = GenerationClock()
        a = Host(env, "a", clock=clock)
        b = Host(env, "b", clock=clock)
        migrator = Migrator(env)
        duplex = migrator.connect(a, b, bandwidth=1 * MB, latency=0.0)
        plan = FaultPlan(send_timeout=0.25).crash("b", at=1.0)
        FaultInjector(env, plan).inject(migrator)
        env.run(until=2.0)
        assert b.crashed
        _e, error = transmit(env, duplex.forward, 1 * MB)
        assert error is not None  # permanently dark

    def test_inject_rejects_unknown_crash_host(self, env):
        from repro.core import Migrator
        from repro.storage import GenerationClock
        from repro.vm import Host

        clock = GenerationClock()
        migrator = Migrator(env)
        migrator.connect(Host(env, "a", clock=clock),
                         Host(env, "b", clock=clock))
        plan = FaultPlan().crash("mars", at=1.0)
        with pytest.raises(FaultError, match="unknown host"):
            FaultInjector(env, plan).inject(migrator)
