"""Validation tests for FaultPlan and its specs."""

import pytest

from repro.errors import FaultError
from repro.faults import BlackoutSpec, CrashSpec, DegradeSpec, FaultPlan


class TestTriggers:
    def test_requires_exactly_one_trigger(self):
        with pytest.raises(FaultError, match="exactly one"):
            BlackoutSpec(duration=1.0)
        with pytest.raises(FaultError, match="exactly one"):
            BlackoutSpec(duration=1.0, at=2.0, phase="freeze")

    def test_rejects_negative_time(self):
        with pytest.raises(FaultError, match="finite"):
            BlackoutSpec(duration=1.0, at=-1.0)

    def test_rejects_infinite_time(self):
        with pytest.raises(FaultError, match="finite"):
            BlackoutSpec(duration=1.0, at=float("inf"))

    def test_rejects_unknown_phase(self):
        with pytest.raises(FaultError, match="unknown phase"):
            BlackoutSpec(duration=1.0, phase="warp")

    def test_rejects_negative_offset(self):
        with pytest.raises(FaultError, match="offset"):
            BlackoutSpec(duration=1.0, phase="freeze", offset=-0.1)

    def test_accepts_phase_trigger(self):
        spec = BlackoutSpec(duration=1.0, phase="precopy-disk", offset=0.5)
        assert spec.phase == "precopy-disk"


class TestSpecs:
    def test_blackout_needs_positive_duration(self):
        with pytest.raises(FaultError, match="duration"):
            BlackoutSpec(duration=0.0, at=1.0)

    def test_blackout_rejects_bad_direction(self):
        with pytest.raises(FaultError, match="direction"):
            BlackoutSpec(duration=1.0, at=1.0, direction="sideways")

    def test_degrade_bandwidth_factor_bounds(self):
        with pytest.raises(FaultError, match="bandwidth_factor"):
            DegradeSpec(duration=1.0, at=1.0, bandwidth_factor=0.0)
        with pytest.raises(FaultError, match="bandwidth_factor"):
            DegradeSpec(duration=1.0, at=1.0, bandwidth_factor=1.5)
        DegradeSpec(duration=1.0, at=1.0, bandwidth_factor=1.0)  # ok

    def test_degrade_rejects_negative_latency(self):
        with pytest.raises(FaultError, match="extra_latency"):
            DegradeSpec(duration=1.0, at=1.0, extra_latency=-1e-3)

    def test_crash_needs_host_name(self):
        with pytest.raises(FaultError, match="host"):
            CrashSpec(host="", at=1.0)


class TestPlan:
    def test_send_timeout_must_be_positive(self):
        with pytest.raises(FaultError, match="send_timeout"):
            FaultPlan(send_timeout=0.0)

    def test_builders_chain_and_fill(self):
        plan = (FaultPlan()
                .blackout(duration=1.0, at=2.0)
                .degrade(duration=0.5, phase="precopy-mem",
                         bandwidth_factor=0.25)
                .crash("source", at=3.0))
        assert len(plan.blackouts) == 1
        assert len(plan.degradations) == 1
        assert len(plan.crashes) == 1
        assert not plan.empty

    def test_empty(self):
        assert FaultPlan().empty
