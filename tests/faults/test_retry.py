"""End-to-end failure and recovery: a migration dies to an injected fault,
the tracking bitmap survives, and the retry resumes incrementally."""

import pytest

from repro.core import MigrationRetrier, TRACKING_NAME
from repro.errors import MigrationFailed
from repro.faults import FaultInjector, FaultPlan


def failing_plan(at=0.02, duration=1.0, send_timeout=0.05):
    """A blackout long enough that a mid-pre-copy send times out."""
    return FaultPlan(send_timeout=send_timeout).blackout(duration=duration,
                                                         at=at)


class TestFailureTeardown:
    def test_blackout_mid_precopy_fails_migration(self, bed):
        FaultInjector(bed.env, failing_plan()).inject(bed.migrator)
        proc = bed.migrator.migrate_process(bed.domain, bed.destination)
        with pytest.raises(MigrationFailed) as excinfo:
            bed.env.run(until=proc)
        failure = excinfo.value
        # The guest never noticed: still on the source, still running.
        assert bed.domain.host is bed.source
        assert bed.domain.running
        # The write-tracking bitmap is KEPT for the incremental retry.
        driver = bed.source.driver_of(bed.domain.domain_id)
        assert driver.has_tracking(TRACKING_NAME)
        assert failure.dest_vbd is not None
        report = failure.report
        assert report.extra["failed"] is True
        assert report.extra["failed_phase"] == "precopy-disk"
        assert report.extra["surviving_dirty_blocks"] > 0
        assert report.migrated_bytes > 0  # the partial transfer was paid for

    def test_failed_attempt_recorded(self, bed):
        FaultInjector(bed.env, failing_plan()).inject(bed.migrator)
        proc = bed.migrator.migrate_process(bed.domain, bed.destination)
        with pytest.raises(MigrationFailed):
            bed.env.run(until=proc)
        assert bed.migrator.history[-1].extra.get("failed")
        assert bed.migrator.has_partial_copy(bed.domain, bed.destination)

    def test_failure_during_memory_precopy_stops_logging(self, bed):
        plan = (FaultPlan(send_timeout=0.05)
                .blackout(duration=0.5, phase="precopy-mem"))
        FaultInjector(bed.env, plan).inject(bed.migrator)
        proc = bed.migrator.migrate_process(bed.domain, bed.destination)
        with pytest.raises(MigrationFailed) as excinfo:
            bed.env.run(until=proc)
        assert excinfo.value.report.extra["failed_phase"] == "precopy-mem"
        assert not bed.domain.memory.logging
        assert bed.domain.running

    def test_workload_survives_failure(self, bed):
        bed.random_writer(region=(0, 300), interval=0.005)
        FaultInjector(bed.env, failing_plan()).inject(bed.migrator)
        proc = bed.migrator.migrate_process(bed.domain, bed.destination)
        with pytest.raises(MigrationFailed):
            bed.env.run(until=proc)
        writes_before = bed.source.driver_of(bed.domain.domain_id).writes
        bed.env.run(until=bed.env.now + 0.5)
        assert bed.source.driver_of(
            bed.domain.domain_id).writes > writes_before


class TestRetry:
    def run_with_retry(self, bed, incremental, duration=0.2,
                       initial_backoff=0.3):
        bed.random_writer(region=(0, 300), interval=0.005, seed=11)
        plan = failing_plan(at=0.02, duration=duration)
        FaultInjector(bed.env, plan).inject(bed.migrator)
        retrier = MigrationRetrier(bed.migrator, max_attempts=3,
                                   initial_backoff=initial_backoff,
                                   incremental=incremental)
        proc = retrier.migrate_process(bed.domain, bed.destination)
        return bed.env.run(until=proc)

    def test_incremental_retry_succeeds_and_is_consistent(self, make_bed):
        bed = make_bed()
        report = self.run_with_retry(bed, incremental=True)
        assert report.attempts == 2
        assert report.retries == 1
        assert len(report.failed_attempts) == 1
        assert report.backoff_time == pytest.approx(0.3)
        assert report.consistency_verified
        assert bed.domain.host is bed.destination
        assert not bed.migrator._partial  # recovery state consumed

    def test_incremental_retry_moves_fewer_disk_bytes(self, make_bed):
        incremental = self.run_with_retry(make_bed(), incremental=True)
        scratch = self.run_with_retry(make_bed(), incremental=False)
        assert incremental.attempts == scratch.attempts == 2
        assert scratch.consistency_verified
        # The final attempt after an incremental resume transfers only the
        # dirty/unconfirmed set; the from-scratch baseline re-sends the
        # whole device.
        assert (incremental.bytes_by_category["disk"]
                < scratch.bytes_by_category["disk"])

    def test_attempt_durations_cover_all_attempts(self, make_bed):
        report = self.run_with_retry(make_bed(), incremental=True)
        assert len(report.attempt_durations) == 2
        assert all(d > 0 for d in report.attempt_durations)
        assert (report.migrated_bytes_all_attempts
                > report.migrated_bytes)

    def test_retrier_gives_up_after_max_attempts(self, bed):
        plan = (FaultPlan(send_timeout=0.05)
                .crash("destination", phase="precopy-disk", offset=0.01))
        FaultInjector(bed.env, plan).inject(bed.migrator)
        retrier = MigrationRetrier(bed.migrator, max_attempts=3,
                                   initial_backoff=0.1)
        proc = retrier.migrate_process(bed.domain, bed.destination)
        with pytest.raises(MigrationFailed, match="3 times"):
            bed.env.run(until=proc)
        assert bed.domain.host is bed.source
        assert bed.domain.running

    def test_crashed_source_fails_immediately(self, bed):
        plan = FaultPlan().crash("source", at=0.01)
        FaultInjector(bed.env, plan).inject(bed.migrator)
        bed.env.run(until=0.02)
        proc = bed.migrator.migrate_process(bed.domain, bed.destination)
        with pytest.raises(MigrationFailed, match="down"):
            bed.env.run(until=proc)

    def test_retrier_validation(self, bed):
        from repro.errors import MigrationError

        with pytest.raises(MigrationError):
            MigrationRetrier(bed.migrator, max_attempts=0)
        with pytest.raises(MigrationError):
            MigrationRetrier(bed.migrator, initial_backoff=-1.0)
        with pytest.raises(MigrationError):
            MigrationRetrier(bed.migrator, backoff_factor=0.5)
        with pytest.raises(MigrationError):
            MigrationRetrier(bed.migrator, max_backoff=0.0)
        with pytest.raises(MigrationError):
            MigrationRetrier(bed.migrator, max_backoff=-1.0)

    def test_backoff_is_capped_at_max_backoff(self, make_bed):
        """Regression: the delay used to grow unboundedly (0.5 * 2**k).
        With factor 10 and cap 2.0 the waits must be 1.0 + 2.0, not
        1.0 + 10.0."""
        bed = make_bed()
        bed.random_writer(region=(0, 300), interval=0.005, seed=11)
        # The blackout spans the first two attempts; only the third
        # (entered after 1.0 + 2.0 s of backoff) finds the link up.
        FaultInjector(bed.env,
                      failing_plan(at=0.02, duration=2.0)).inject(
            bed.migrator)
        retrier = MigrationRetrier(bed.migrator, max_attempts=5,
                                   initial_backoff=1.0, backoff_factor=10.0,
                                   max_backoff=2.0)
        proc = retrier.migrate_process(bed.domain, bed.destination)
        report = bed.env.run(until=proc)
        assert report.attempts == 3
        assert report.backoff_time == pytest.approx(3.0)
        assert report.consistency_verified


class TestZeroCost:
    """With no plan (or no injector), the fault layer must not change a
    single reported number — acceptance criterion of the PR."""

    @staticmethod
    def run_once(bed, with_injector):
        bed.random_writer(region=(0, 400), interval=0.004, seed=5)
        if with_injector:
            FaultInjector(bed.env, FaultPlan()).inject(bed.migrator)
        return bed.migrate()

    def test_empty_plan_is_byte_identical(self, make_bed):
        plain = self.run_once(make_bed(), with_injector=False)
        faulted = self.run_once(make_bed(), with_injector=True)
        assert plain.migrated_bytes == faulted.migrated_bytes
        assert plain.bytes_by_category == faulted.bytes_by_category
        assert plain.total_migration_time == faulted.total_migration_time
        assert plain.downtime == faulted.downtime
        assert ([i.bytes_sent for i in plain.disk_iterations]
                == [i.bytes_sent for i in faulted.disk_iterations])
        assert ([i.ended_at for i in plain.disk_iterations]
                == [i.ended_at for i in faulted.disk_iterations])
        assert plain.remaining_dirty_blocks == faulted.remaining_dirty_blocks
        assert plain.postcopy.pushed_blocks == faulted.postcopy.pushed_blocks
        assert plain.postcopy.ended_at == faulted.postcopy.ended_at
