"""Topology-scale faults: partitions along rack boundaries and
deterministic link flapping — spec validation, plan narrowing, and
behaviour against a racked cluster."""

import pytest

from repro.cluster import build_cluster
from repro.errors import FaultError, ReproError
from repro.faults import FaultInjector, FaultPlan, FlapSpec, PartitionSpec

SMALL = dict(nblocks=256, npages=64)


def racked(**kw):
    """4 hosts in 2 racks: host00/host01 on rack0, host02/host03 on
    rack1, racks joined through 'core'."""
    return build_cluster(nhosts=4, vms_per_host=1, wiring="rack",
                         rack_size=2, **SMALL, **kw)


class TestPartitionSpec:
    def test_needs_nodes(self):
        with pytest.raises(FaultError, match="at least one node"):
            PartitionSpec(isolate=(), duration=1.0, at=0.0)

    def test_duration_must_be_positive(self):
        with pytest.raises(FaultError, match="duration"):
            PartitionSpec(isolate=("rack1",), duration=0.0, at=0.0)

    def test_requires_exactly_one_trigger(self):
        with pytest.raises(FaultError, match="exactly one"):
            PartitionSpec(isolate=("rack1",), duration=1.0)
        with pytest.raises(FaultError, match="exactly one"):
            PartitionSpec(isolate=("rack1",), duration=1.0, at=0.0,
                          phase="freeze")

    def test_isolate_is_sorted_and_deduped(self):
        spec = PartitionSpec(isolate=("b", "a", "b"), duration=1.0, at=0.0)
        assert spec.isolate == ("a", "b")


class TestFlapSpec:
    def test_times_must_be_positive(self):
        with pytest.raises(FaultError, match="down_time"):
            FlapSpec(down_time=0.0, at=0.0)
        with pytest.raises(FaultError, match="up_time"):
            FlapSpec(down_time=0.1, up_time=0.0, at=0.0)

    def test_count_must_be_at_least_one(self):
        with pytest.raises(FaultError, match="count"):
            FlapSpec(down_time=0.1, count=0, at=0.0)

    def test_link_needs_two_endpoints(self):
        with pytest.raises(FaultError, match="two node names"):
            FlapSpec(down_time=0.1, link=("rack0",), at=0.0)

    def test_windows_tile_the_episode(self):
        spec = FlapSpec(down_time=0.2, up_time=0.3, count=3, at=1.0)
        assert spec.windows(1.0) == [(1.0, 1.2), (1.5, 1.7), (2.0, 2.2)]


class TestPlanBuilders:
    def test_builders_chain_and_fill(self):
        plan = (FaultPlan()
                .partition(["rack1"], duration=1.0, at=0.5)
                .flap(down_time=0.1, up_time=0.1, count=2, at=0.2))
        assert len(plan.partitions) == 1
        assert len(plan.flaps) == 1
        assert not plan.empty
        assert plan.partitions[0].isolate == ("rack1",)

    def test_narrowed_to_keeps_link_faults_and_filters_crashes(self):
        plan = (FaultPlan()
                .partition(["rack1"], duration=1.0, at=0.5)
                .flap(down_time=0.1, up_time=0.1, at=0.2)
                .crash("host00", at=1.0)
                .crash("host02", at=1.0))
        narrowed = plan.narrowed_to(["host00", "host01"])
        assert [c.host for c in narrowed.crashes] == ["host00"]
        # A partition cut or fabric flap can touch any shard's replica
        # topology, so link-scoped specs survive narrowing untouched.
        assert narrowed.partitions == plan.partitions
        assert narrowed.flaps == plan.flaps


class TestPartitionBehaviour:
    def test_crossing_traffic_fails_interior_traffic_rides_it_out(self):
        bed = racked()
        plan = (FaultPlan(send_timeout=0.05)
                .partition(["rack1"], duration=30.0, at=0.0))
        FaultInjector(bed.env, plan).inject(bed.migrator)
        source = bed.domains_on(bed.hosts[0])[0]
        cross = bed.scheduler.submit(source, bed.hosts[2])
        intra = bed.scheduler.submit(bed.domains_on(bed.hosts[1])[0],
                                     bed.hosts[0])
        bed.scheduler.drain([cross, intra])

        assert cross.status == "failed"
        assert isinstance(cross.error, ReproError)
        assert source.host is bed.hosts[0] and source.running
        assert intra.succeeded  # rack0 is interior to the majority side

    def test_partition_heals_and_traffic_resumes(self):
        bed = racked()
        plan = (FaultPlan(send_timeout=10.0)
                .partition(["rack1"], duration=0.02, at=0.0))
        FaultInjector(bed.env, plan).inject(bed.migrator)
        job = bed.scheduler.submit(bed.domains_on(bed.hosts[0])[0],
                                   bed.hosts[2])
        bed.scheduler.drain([job])
        assert job.succeeded
        assert job.ended_at > 0.02  # stalled until the cut healed

    def test_partition_composes_with_crash(self):
        bed = racked()
        plan = (FaultPlan(send_timeout=0.05)
                .partition(["rack1"], duration=30.0, at=0.0)
                .crash("host01", at=0.01))
        FaultInjector(bed.env, plan).inject(bed.migrator)
        cross = bed.scheduler.submit(bed.domains_on(bed.hosts[0])[0],
                                     bed.hosts[2])
        bed.scheduler.drain([cross])
        assert cross.status == "failed"
        assert bed.hosts[1].crashed


class TestFlapBehaviour:
    def test_targeted_flap_only_affects_named_link(self):
        bed = racked()
        plan = (FaultPlan(send_timeout=0.05)
                .flap(down_time=30.0, up_time=0.5, count=1,
                      link=("rack1", "core"), at=0.0))
        FaultInjector(bed.env, plan).inject(bed.migrator)
        cross = bed.scheduler.submit(bed.domains_on(bed.hosts[0])[0],
                                     bed.hosts[2])
        intra = bed.scheduler.submit(bed.domains_on(bed.hosts[1])[0],
                                     bed.hosts[0])
        bed.scheduler.drain([cross, intra])
        assert cross.status == "failed"
        assert intra.succeeded

    def test_short_flaps_delay_but_deliver(self):
        calm = racked()
        ref = calm.scheduler.submit(calm.domains_on(calm.hosts[0])[0],
                                    calm.hosts[2])
        calm.scheduler.drain([ref])

        bed = racked()
        plan = (FaultPlan(send_timeout=10.0)
                .flap(down_time=0.01, up_time=0.01, count=3,
                      link=("rack0", "core"), at=0.0))
        FaultInjector(bed.env, plan).inject(bed.migrator)
        job = bed.scheduler.submit(bed.domains_on(bed.hosts[0])[0],
                                   bed.hosts[2])
        bed.scheduler.drain([job])
        assert job.succeeded
        assert job.ended_at > ref.ended_at

    def test_fabric_wide_flap_hits_every_inter_rack_link(self):
        bed = racked()
        plan = (FaultPlan(send_timeout=0.05)
                .flap(down_time=30.0, up_time=0.5, count=1, at=0.0))
        injector = FaultInjector(bed.env, plan).inject(bed.migrator)
        fabric = bed.migrator.topology.inter_rack_links()
        assert fabric  # rack0-core and rack1-core at least
        cross = bed.scheduler.submit(bed.domains_on(bed.hosts[0])[0],
                                     bed.hosts[2])
        bed.scheduler.drain([cross])
        assert cross.status == "failed"
        assert any("flap" in entry for _, entry in injector.log)
