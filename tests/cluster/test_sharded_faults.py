"""Faults against the sharded engine: per-shard plan splitting, clean
cross-rack failure, surrogate-transplant rollback, and fault windows
straddling the conservative lookahead boundary."""

import pytest

from repro.cluster import build_sharded_cluster, check_invariants
from repro.errors import ReproError
from repro.faults import FaultPlan

SMALL = dict(nblocks=256, npages=64)
#: The engine's conservative window length (min inter-rack latency).
LOOKAHEAD = 100e-6


def sharded(**kw):
    return build_sharded_cluster(nracks=2, hosts_per_rack=2,
                                 vms_per_host=1, **SMALL, **kw)


def domain_on(cluster, host_name):
    (domain,) = [d for d in cluster.domains if d.host.name == host_name]
    return domain


class TestInjectFaults:
    def test_crashes_narrow_per_shard_link_faults_replicate(self):
        cluster = sharded()
        plan = (FaultPlan()
                .crash("host00", at=50.0)
                .crash("host02", at=50.0)
                .partition(["rack1"], duration=1.0, at=50.0))
        injectors = cluster.inject_faults(plan)
        assert len(injectors) == len(cluster.shards) == 2
        assert [c.host for c in injectors[0].plan.crashes] == ["host00"]
        assert [c.host for c in injectors[1].plan.crashes] == ["host02"]
        # Partition cuts can touch any shard's replica fabric, so every
        # shard keeps the full spec.
        assert all(inj.plan.partitions == plan.partitions
                   for inj in injectors)

    def test_double_injection_rejected(self):
        cluster = sharded()
        cluster.inject_faults(FaultPlan().crash("host00", at=50.0))
        with pytest.raises(ReproError, match="already injected"):
            cluster.inject_faults(FaultPlan())


class TestCrossRackFailure:
    def test_partition_fails_precopy_cleanly(self):
        cluster = sharded()
        expected = {d.domain_id for d in cluster.domains}
        plan = (FaultPlan(send_timeout=0.05)
                .partition(["rack1"], duration=60.0, at=0.0))
        cluster.inject_faults(plan)
        domain = domain_on(cluster, "host00")
        job = cluster.submit(domain, "host02")
        cluster.drain([job])

        assert job.status == "failed"
        assert domain.host.name == "host00"  # never left the source
        assert not cluster.surrogate_residents()
        assert job in cluster.shards[0].scheduler.dead_letter
        assert check_invariants(cluster, expected) == []

    def test_postcopy_failure_rolls_back_the_transplant(self):
        # The ISSUE's marquee case: the cut lands *after* handover, while
        # the domain sits on the surrogate pulling remainder blocks.  The
        # watcher must undo the stand-in attach so the domain is not
        # stranded in a shard it never really reached.
        cluster = sharded()
        expected = {d.domain_id for d in cluster.domains}
        plan = (FaultPlan(send_timeout=0.05)
                .flap(down_time=60.0, up_time=0.5, count=1,
                      link=("rack1", "core"), phase="postcopy"))
        cluster.inject_faults(plan)
        domain = domain_on(cluster, "host00")
        job = cluster.submit(domain, "host02")
        cluster.drain([job])

        assert job.status == "failed"
        assert domain.host is not None
        assert domain.host.name == "host00"  # rolled back, not stranded
        assert not getattr(domain.host, "is_surrogate", False)
        assert not cluster.surrogate_residents()
        assert not cluster._live_cross
        assert check_invariants(cluster, expected) == []

    def test_rollback_is_counted(self):
        cluster = sharded(observe=True)
        plan = (FaultPlan(send_timeout=0.05)
                .flap(down_time=60.0, up_time=0.5, count=1,
                      link=("rack1", "core"), phase="postcopy"))
        cluster.inject_faults(plan)
        job = cluster.submit(domain_on(cluster, "host00"), "host02")
        cluster.drain([job])
        env = cluster.shards[0].env
        assert env.metrics.counter("cluster.cross_rack.rollbacks").total == 1


class TestLookaheadWindowBoundaries:
    """Satellite: fault windows must behave identically whether their
    edges land on, inside, or across the sharded engine's conservative
    synchronization windows (multiples of the inter-rack lookahead)."""

    def _delayed_cross(self, at, down_time):
        cluster = sharded()
        expected = {d.domain_id for d in cluster.domains}
        plan = (FaultPlan(send_timeout=60.0)
                .flap(down_time=down_time, up_time=0.5, count=1,
                      link=("rack0", "core"), at=at))
        cluster.inject_faults(plan)
        job = cluster.submit(domain_on(cluster, "host00"), "host02")
        cluster.drain([job])
        assert job.succeeded
        assert check_invariants(cluster, expected) == []
        return job.ended_at

    def test_window_straddling_fault_delays_and_delivers(self):
        # Starts mid-window, ends mid-window, spans several boundaries.
        self._delayed_cross(at=7.5 * LOOKAHEAD, down_time=3.5 * LOOKAHEAD)

    def test_fault_edges_on_exact_boundaries(self):
        self._delayed_cross(at=10 * LOOKAHEAD, down_time=4 * LOOKAHEAD)

    def test_sub_lookahead_fault_inside_one_window(self):
        self._delayed_cross(at=5.25 * LOOKAHEAD, down_time=0.5 * LOOKAHEAD)

    def test_boundary_alignment_does_not_change_the_outcome(self):
        # The same outage shifted by a fraction of a window must cost the
        # same wall-clock give or take the shift itself: conservative
        # windowing may quantize *processing*, never *physics*.
        base = self._delayed_cross(at=8 * LOOKAHEAD,
                                   down_time=6 * LOOKAHEAD)
        shifted = self._delayed_cross(at=8.5 * LOOKAHEAD,
                                      down_time=6 * LOOKAHEAD)
        assert shifted == pytest.approx(base, abs=LOOKAHEAD)

    def test_failing_fault_across_boundary_fails_cleanly(self):
        cluster = sharded()
        expected = {d.domain_id for d in cluster.domains}
        plan = (FaultPlan(send_timeout=0.05)
                .flap(down_time=60.0, up_time=0.5, count=1,
                      link=("rack1", "core"), at=3.5 * LOOKAHEAD))
        cluster.inject_faults(plan)
        domain = domain_on(cluster, "host00")
        job = cluster.submit(domain, "host02")
        cluster.drain([job])
        assert job.status == "failed"
        assert domain.host.name == "host00"
        assert check_invariants(cluster, expected) == []
