"""The seeded chaos harness: reproducibility, invariant checking, and
the fixed smoke seeds CI relies on."""

import pytest

from repro.cluster import (ChaosConfig, ChaosReport, build_cluster,
                           check_invariants, run_chaos)
from repro.cluster.chaos import MODES, random_plan
from repro.errors import ReproError

import numpy as np

SMALL = dict(nblocks=256, npages=64)


class TestConfig:
    def test_rejects_unknown_mode(self):
        with pytest.raises(ReproError, match="mode"):
            ChaosConfig(mode="quantum")

    def test_rejects_degenerate_runs(self):
        with pytest.raises(ReproError, match="njobs"):
            ChaosConfig(njobs=0)
        with pytest.raises(ReproError, match="horizon"):
            ChaosConfig(horizon=0.0)


class TestRandomPlan:
    def test_same_seed_same_schedule(self):
        config = ChaosConfig(seed=7)
        a = random_plan(config, np.random.default_rng(7))
        b = random_plan(config, np.random.default_rng(7))
        assert a.partitions == b.partitions
        assert a.flaps == b.flaps
        assert a.crashes == b.crashes

    def test_different_seeds_differ(self):
        config = ChaosConfig()
        a = random_plan(config, np.random.default_rng(0))
        b = random_plan(config, np.random.default_rng(1))
        assert (a.partitions, a.flaps, a.crashes) != \
               (b.partitions, b.flaps, b.crashes)

    def test_counts_match_config(self):
        config = ChaosConfig(npartitions=2, nflaps=3, ncrashes=1)
        plan = random_plan(config, np.random.default_rng(0))
        assert len(plan.partitions) == 2
        assert len(plan.flaps) == 3
        assert len(plan.crashes) == 1
        assert plan.send_timeout == config.send_timeout

    def test_fault_times_land_inside_the_horizon(self):
        config = ChaosConfig(npartitions=4, nflaps=4, ncrashes=4)
        plan = random_plan(config, np.random.default_rng(3))
        ats = ([s.at for s in plan.partitions] + [s.at for s in plan.flaps]
               + [s.at for s in plan.crashes])
        assert all(0.0 <= at < config.horizon for at in ats)


class TestRunChaos:
    @pytest.mark.parametrize("mode", MODES)
    def test_smoke_seeds_hold_all_invariants(self, mode):
        for seed in (0, 1):
            report = run_chaos(ChaosConfig(seed=seed, mode=mode))
            assert report.ok, report.summary()
            assert report.faults >= 3
            assert len(report.jobs) == report.config.njobs
            assert report.succeeded + report.failed == len(report.jobs)
            assert report.dead_lettered == report.failed

    def test_same_seed_reproduces_exactly(self):
        a = run_chaos(ChaosConfig(seed=2))
        b = run_chaos(ChaosConfig(seed=2))
        assert (a.succeeded, a.failed, a.dead_lettered) == \
               (b.succeeded, b.failed, b.dead_lettered)
        assert [j.ended_at for j in a.jobs] == [j.ended_at for j in b.jobs]

    def test_summary_names_seed_and_mode(self):
        report = run_chaos(ChaosConfig(seed=0, mode="monolithic"))
        assert "seed=0" in report.summary()
        assert "mode=monolithic" in report.summary()

    def test_violations_are_printed_in_the_summary(self):
        report = ChaosReport(config=ChaosConfig(), jobs=[],
                             violations=["placement: made up"])
        assert not report.ok
        assert "VIOLATION" in report.summary()
        assert "made up" in report.summary()


class TestCheckInvariants:
    def test_clean_cluster_is_green(self):
        bed = build_cluster(nhosts=3, vms_per_host=1, **SMALL)
        expected = {d.domain_id for d in bed.domains}
        job = bed.scheduler.submit(bed.domains_on(bed.hosts[0])[0],
                                   bed.hosts[1])
        bed.scheduler.drain([job])
        assert check_invariants(bed, expected) == []

    def test_detached_domain_is_a_placement_violation(self):
        bed = build_cluster(nhosts=2, vms_per_host=1, **SMALL)
        expected = {d.domain_id for d in bed.domains}
        lost = bed.domains_on(bed.hosts[0])[0]
        bed.hosts[0].detach_domain(lost.domain_id)
        violations = check_invariants(bed, expected)
        assert any("placement" in v and "0 hosts" in v for v in violations)

    def test_doubly_attached_domain_is_a_placement_violation(self):
        bed = build_cluster(nhosts=2, vms_per_host=1, **SMALL)
        expected = {d.domain_id for d in bed.domains}
        twin = bed.domains_on(bed.hosts[0])[0]
        _, vbd = bed.hosts[0].detach_domain(twin.domain_id)
        bed.hosts[0].attach_domain(twin, vbd)
        # Simulate a botched transplant: a second host thinks it owns
        # the domain too.
        bed.hosts[1]._domains[twin.domain_id] = twin
        violations = check_invariants(bed, expected)
        assert any("2 hosts" in v for v in violations)

    def test_missing_dead_letter_entry_is_a_violation(self):
        bed = build_cluster(nhosts=2, vms_per_host=1, **SMALL)
        expected = {d.domain_id for d in bed.domains}
        bed.hosts[1].crashed = True
        job = bed.scheduler.submit(bed.domains_on(bed.hosts[0])[0],
                                   bed.hosts[1])
        bed.scheduler.drain([job])
        assert job.status == "failed"
        bed.scheduler.dead_letter.clear()  # sabotage the triage list
        violations = check_invariants(bed, expected)
        assert any("dead-letter" in v for v in violations)
