"""Host health tracking: CircuitBreaker state machine and the
HealthMonitor feeds (job outcomes, injector crash events, polling)."""

import pytest

from repro.cluster import CircuitBreaker, HealthMonitor, build_cluster
from repro.cluster.hostmanager import HostManager, PlacementSpec
from repro.errors import MigrationError, NoValidHost
from repro.faults import FaultInjector, FaultPlan
from repro.sim import Environment

SMALL = dict(nblocks=256, npages=64)


class TestCircuitBreaker:
    def test_validation(self):
        with pytest.raises(MigrationError, match="failure_threshold"):
            CircuitBreaker("h", failure_threshold=0)
        with pytest.raises(MigrationError, match="recovery_time"):
            CircuitBreaker("h", recovery_time=0.0)

    def test_trips_after_consecutive_failures(self):
        b = CircuitBreaker("h", failure_threshold=3, recovery_time=5.0)
        b.record_failure(0.0)
        b.record_failure(1.0)
        assert b.state(1.0) == "closed" and b.allows(1.0)
        b.record_failure(2.0)
        assert b.state(2.0) == "open" and not b.allows(2.0)
        assert b.trips == 1

    def test_success_resets_the_streak(self):
        b = CircuitBreaker("h", failure_threshold=2)
        b.record_failure(0.0)
        b.record_success(0.5)
        b.record_failure(1.0)
        assert b.state(1.0) == "closed"

    def test_open_lapses_to_half_open_single_probe(self):
        b = CircuitBreaker("h", failure_threshold=1, recovery_time=5.0)
        b.record_failure(0.0)
        assert b.state(4.9) == "open"
        assert b.state(5.0) == "half-open"
        assert b.allows(5.0)        # the probe gets through
        assert not b.allows(5.0)    # everyone else waits for its verdict

    def test_probe_success_closes_probe_failure_reopens(self):
        b = CircuitBreaker("h", failure_threshold=1, recovery_time=5.0)
        b.record_failure(0.0)
        assert b.allows(5.0)
        b.record_success(5.5)
        assert b.state(5.5) == "closed"

        b.record_failure(6.0)  # trips again (threshold 1)
        assert b.allows(11.0)
        b.record_failure(11.5)  # probe died: recovery clock restarts
        assert b.state(11.5 + 4.9) == "open"
        assert b.state(11.5 + 5.0) == "half-open"
        assert b.trips == 3

    def test_force_open_skips_the_streak(self):
        b = CircuitBreaker("h", failure_threshold=5)
        b.force_open(1.0)
        assert b.state(1.0) == "open" and b.trips == 1

    def test_reset_closes_administratively(self):
        b = CircuitBreaker("h", failure_threshold=1)
        b.record_failure(0.0)
        b.reset()
        assert b.state(0.0) == "closed" and b.allows(0.0)


class TestHealthMonitor:
    def test_unknown_hosts_are_healthy_without_allocation(self):
        mon = HealthMonitor(Environment())
        assert mon.healthy("never-seen")
        assert mon.state_of("never-seen") == "closed"
        assert not mon.breakers  # the query created nothing

    def test_failures_open_and_time_heals(self):
        env = Environment()
        mon = HealthMonitor(env, failure_threshold=2, recovery_time=1.0)
        mon.record_failure("h")
        mon.record_failure("h")
        assert not mon.healthy("h") and mon.state_of("h") == "open"
        env.run(until=2.0)
        assert mon.state_of("h") == "half-open"
        assert mon.healthy("h")  # admits the single probe

    def test_open_fraction_counts_only_open(self):
        env = Environment()
        mon = HealthMonitor(env, failure_threshold=1, recovery_time=10.0)
        mon.record_failure("a")
        assert mon.open_fraction(["a", "b", "c", "d"]) == 0.25
        assert mon.open_fraction([]) == 0.0

    def test_attach_wires_injector_crash_events(self):
        bed = build_cluster(nhosts=3, vms_per_host=1, health=True,
                            observe=True, **SMALL)
        plan = FaultPlan().crash("host01", at=0.5, down_for=1.0)
        injector = FaultInjector(bed.env, plan).inject(bed.migrator)
        bed.scheduler.health.attach(injector)
        bed.env.run(until=0.6)
        assert bed.scheduler.health.state_of("host01") == "open"
        assert bed.env.metrics.counter("cluster.health.crashes").total == 1

    def test_poll_folds_unannounced_crashes_once(self):
        env = Environment()
        bed = build_cluster(nhosts=2, vms_per_host=1, env=env, **SMALL)
        mon = HealthMonitor(env, recovery_time=0.5)
        bed.hosts[0].crashed = True
        mon.poll(bed.hosts)
        mon.poll(bed.hosts)  # second sighting must not re-trip
        assert mon.breaker("host00").trips == 1


class TestHealthyFilter:
    def test_open_breaker_excludes_host_from_placement(self):
        bed = build_cluster(nhosts=3, vms_per_host=1, health=True, **SMALL)
        mon = bed.scheduler.health
        assert "healthy" in bed.scheduler.hostmanager.filter_names
        for _ in range(mon.failure_threshold):
            mon.record_failure("host01")
        domain = bed.domains_on(bed.hosts[0])[0]
        choice = bed.scheduler.hostmanager.select(
            PlacementSpec(domain=domain), exclude=("host00",))
        assert choice.name == "host02"

    def test_all_breakers_open_means_no_valid_host(self):
        bed = build_cluster(nhosts=2, vms_per_host=1, health=True, **SMALL)
        mon = bed.scheduler.health
        for _ in range(mon.failure_threshold):
            mon.record_failure("host01")
        domain = bed.domains_on(bed.hosts[0])[0]
        with pytest.raises(NoValidHost):
            bed.scheduler.hostmanager.select(
                PlacementSpec(domain=domain), exclude=("host00",))
