"""Job-level failure recovery: retry with re-placement, dead-lettering,
deadlines, overload shedding, and structured failure records."""

import pytest

from repro.cluster import (RetryPolicy, build_cluster, slo_report)
from repro.errors import AdmissionRejected, ReproError
from repro.faults import FaultInjector, FaultPlan

SMALL = dict(nblocks=256, npages=64)
#: Big enough that a crash at t=0.1 lands mid-precopy.
SLOW = dict(nblocks=16384, npages=64)

POLICY = RetryPolicy(max_attempts=3, initial_backoff=0.05, max_backoff=0.5)


def recovering_cluster(nhosts=3, **kw):
    kw.setdefault("retry", POLICY)
    kw.setdefault("health", True)
    return build_cluster(nhosts=nhosts, vms_per_host=1, **kw)


class TestRetryWithReplacement:
    def test_replaceable_job_survives_destination_crash(self):
        bed = recovering_cluster(observe=True, **SLOW)
        plan = FaultPlan().crash("host01", at=0.1)
        injector = FaultInjector(bed.env, plan).inject(bed.migrator)
        bed.scheduler.health.attach(injector)
        job = bed.scheduler.submit(bed.domains_on(bed.hosts[0])[0],
                                   bed.hosts[1], replaceable=True)
        bed.scheduler.drain([job])

        assert job.succeeded
        assert job.destination.name == "host02"  # re-placed, not retried
        assert job.attempts == 2
        assert job.failures and job.failures[0].attempt == 1
        assert not bed.scheduler.dead_letter
        assert bed.env.metrics.counter("cluster.jobs.replaced").total == 1

    def test_failure_record_is_structured(self):
        bed = recovering_cluster(**SLOW)
        injector = FaultInjector(
            bed.env, FaultPlan().crash("host01", at=0.1))
        injector.inject(bed.migrator)
        job = bed.scheduler.submit(bed.domains_on(bed.hosts[0])[0],
                                   bed.hosts[1], replaceable=True)
        bed.scheduler.drain([job])
        failure = job.failures[0]
        assert failure.destination == "host01"
        assert failure.phase.startswith("precopy")
        assert failure.error_type
        assert failure.at > 0.1  # recorded when the attempt died
        assert failure.phase in str(failure)

    def test_explicit_submission_retries_same_destination(self):
        bed = recovering_cluster(nhosts=3, **SMALL)
        bed.hosts[1].crashed = True
        job = bed.scheduler.submit(bed.domains_on(bed.hosts[0])[0],
                                   bed.hosts[1])  # not replaceable
        bed.scheduler.drain([job])
        assert job.status == "failed"
        assert job.destination is bed.hosts[1]  # never rerouted
        assert job.attempts == POLICY.max_attempts
        assert len(job.failures) == POLICY.max_attempts


class TestDeadLetter:
    def test_exhausted_budget_lands_in_dead_letter(self):
        bed = recovering_cluster(nhosts=2, **SMALL)
        bed.hosts[1].crashed = True
        job = bed.scheduler.submit(bed.domains_on(bed.hosts[0])[0],
                                   bed.hosts[1])
        bed.scheduler.drain([job])
        assert job in bed.scheduler.dead_letter
        assert isinstance(job.error, ReproError)
        assert job.failure is job.failures[-1]

    def test_deadline_abandons_before_budget(self):
        bed = recovering_cluster(
            nhosts=2, retry=RetryPolicy(max_attempts=5, initial_backoff=10.0),
            **SMALL)
        bed.hosts[1].crashed = True
        job = bed.scheduler.submit(bed.domains_on(bed.hosts[0])[0],
                                   bed.hosts[1], deadline=1.0)
        bed.scheduler.drain([job])
        assert job.status == "failed"
        assert job in bed.scheduler.dead_letter
        assert len(job.failures) < 5  # gave up on the clock, not the count
        assert "deadline" in str(job.error)

    def test_single_attempt_failures_are_dead_lettered_too(self):
        # Even with recovery off the operator gets one triage list.
        bed = build_cluster(nhosts=2, vms_per_host=1, **SMALL)
        bed.hosts[1].crashed = True
        job = bed.scheduler.submit(bed.domains_on(bed.hosts[0])[0],
                                   bed.hosts[1])
        bed.scheduler.drain([job])
        assert bed.scheduler.dead_letter == [job]
        assert job.attempts == 1


class TestShedding:
    def test_submission_shed_while_fleet_melts(self):
        bed = recovering_cluster(nhosts=4, shed_threshold=0.5, **SMALL)
        mon = bed.scheduler.health
        for name in ("host02", "host03"):
            for _ in range(mon.failure_threshold):
                mon.record_failure(name)
        with pytest.raises(AdmissionRejected) as excinfo:
            bed.scheduler.submit(bed.domains_on(bed.hosts[0])[0],
                                 bed.hosts[1])
        assert excinfo.value.open_fraction == pytest.approx(0.5)
        assert bed.scheduler.shed_count == 1

    def test_admission_reopens_after_recovery(self):
        bed = recovering_cluster(nhosts=2, shed_threshold=0.5, **SMALL)
        mon = bed.scheduler.health
        for _ in range(mon.failure_threshold):
            mon.record_failure("host01")
        with pytest.raises(AdmissionRejected):
            bed.scheduler.submit(bed.domains_on(bed.hosts[0])[0],
                                 bed.hosts[1])
        bed.env.run(until=mon.recovery_time + 1.0)
        # Breaker lapsed to half-open: no longer counted as open.
        job = bed.scheduler.submit(bed.domains_on(bed.hosts[0])[0],
                                   bed.hosts[1])
        bed.scheduler.drain([job])
        assert job.succeeded

    def test_invalid_threshold_rejected(self):
        from repro.errors import MigrationError
        with pytest.raises(MigrationError, match="shed_threshold"):
            build_cluster(nhosts=2, vms_per_host=1, shed_threshold=1.5,
                          **SMALL)


class TestSLOAccounting:
    def test_report_counts_attempts_and_failure_kinds(self):
        bed = recovering_cluster(nhosts=3, **SMALL)
        bed.hosts[1].crashed = True
        doomed = bed.scheduler.submit(bed.domains_on(bed.hosts[0])[0],
                                      bed.hosts[1])
        fine = bed.scheduler.submit(bed.domains_on(bed.hosts[2])[0],
                                    bed.hosts[0])
        bed.scheduler.drain([doomed, fine])

        report = slo_report([doomed, fine])
        assert report.dead_lettered == 1
        assert report.attempts == POLICY.max_attempts + 1
        assert sum(report.failure_kinds.values()) == 1
        ((error_type, phase),) = report.failure_kinds
        assert error_type == doomed.failure.error_type
        assert phase == doomed.failure.phase
        text = report.summary()
        assert "attempts" in text and "failures" in text
