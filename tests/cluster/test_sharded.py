"""ShardedCluster: monolithic equivalence, transplants, churn, SLO."""

import dataclasses

import pytest

from repro.cluster import (ChurnConfig, ChurnGenerator, build_cluster,
                           build_sharded_cluster, makespan_percentiles,
                           slo_report)
from repro.cluster.slo import default_tenant
from repro.errors import ReproError

SMALL = dict(nblocks=256, npages=64)


def mono_bed(nracks=2, hosts_per_rack=2, vms_per_host=2):
    return build_cluster(nhosts=nracks * hosts_per_rack,
                         vms_per_host=vms_per_host, wiring="rack",
                         rack_size=hosts_per_rack, **SMALL)


def sharded(nracks=2, hosts_per_rack=2, vms_per_host=2, **kw):
    return build_sharded_cluster(nracks=nracks,
                                 hosts_per_rack=hosts_per_rack,
                                 vms_per_host=vms_per_host, **SMALL, **kw)


def mono_ledger(bed):
    ledger = {}
    for duplex in bed.migrator.topology.links.values():
        for link in (duplex.forward, duplex.backward):
            if link.bytes_sent:
                ledger[link.name] = link.bytes_sent
    return dict(sorted(ledger.items()))


class TestGeometry:
    def test_host_names_and_order_match_monolithic(self):
        bed, cluster = mono_bed(), sharded()
        assert [h.name for h in cluster.hosts] == [h.name for h in bed.hosts]
        assert ([d.name for d in cluster.domains]
                == [d.name for d in bed.domains])

    def test_shard_ownership(self):
        cluster = sharded()
        assert cluster.shard_of("host00").name == "rack0"
        assert cluster.shard_of("host03").name == "rack1"
        with pytest.raises(ReproError):
            cluster.shard_of("host99")

    def test_lookahead_is_inter_rack_latency(self):
        cluster = sharded()
        assert cluster.engine.lookahead == cluster.inter_rack_latency


class TestEquivalence:
    def test_intra_rack_report_identical_to_monolithic(self):
        bed, cluster = mono_bed(), sharded()
        mono_job = bed.scheduler.submit(bed.domains[0], bed.host("host01"))
        bed.scheduler.drain([mono_job])
        shard_job = cluster.submit(cluster.domains[0], "host01")
        cluster.drain([shard_job])
        assert shard_job.succeeded
        assert (dataclasses.asdict(shard_job.report)
                == dataclasses.asdict(mono_job.report))
        assert cluster.link_ledger() == mono_ledger(bed)

    def test_cross_rack_report_and_ledger_identical_to_monolithic(self):
        bed, cluster = mono_bed(), sharded()
        mono_job = bed.scheduler.submit(bed.domains[0], bed.host("host02"))
        bed.scheduler.drain([mono_job])
        shard_job = cluster.submit(cluster.domains[0], "host02")
        cluster.drain([shard_job])
        assert shard_job.succeeded
        assert (dataclasses.asdict(shard_job.report)
                == dataclasses.asdict(mono_job.report))
        # Replica fabric links fold into the monolithic link names.
        assert cluster.link_ledger() == mono_ledger(bed)
        cluster.assert_conserved()

    def test_two_sharded_runs_are_deterministic(self):
        reports, ledgers = [], []
        for _ in range(2):
            cluster = sharded()
            jobs = [cluster.submit(cluster.domains[0], "host03"),
                    cluster.submit(cluster.domains[2], "host00")]
            cluster.drain(jobs)
            assert all(job.succeeded for job in jobs)
            reports.append([dataclasses.asdict(job.report) for job in jobs])
            ledgers.append(cluster.link_ledger())
        assert reports[0] == reports[1]
        assert ledgers[0] == ledgers[1]


class TestCrossRack:
    def test_domain_transplants_to_destination_shard(self):
        cluster = sharded()
        domain = cluster.domains[0]
        src_env = cluster.shard_of("host00").env
        dst_shard = cluster.shard_of("host03")
        job = cluster.submit(domain, "host03")
        cluster.drain([job])
        assert job.succeeded
        assert domain.host is cluster.host("host03")
        assert domain.name in [d.name for d in cluster.host("host03").domains]
        # The domain now lives in the destination shard's simulation.
        assert domain.env is dst_shard.env
        assert domain.env is not src_env
        assert cluster.engine.messages_delivered == 1

    def test_transplanted_domain_keeps_migrating(self):
        # After a shard hop the Lamport-merged clocks must keep stamps
        # monotonic: a follow-up intra-rack migration still verifies.
        cluster = sharded()
        domain = cluster.domains[0]
        job = cluster.submit(domain, "host03")
        cluster.drain([job])
        job2 = cluster.shard_of("host03").scheduler.submit(
            domain, cluster.host("host02"))
        cluster.drain([job2])
        assert job2.succeeded
        cluster.assert_conserved()

    def test_on_arrival_hook_runs_in_destination_env(self):
        cluster = sharded()
        seen = []
        job = cluster.submit(cluster.domains[0], "host02",
                             on_arrival=lambda env, dom:
                             seen.append((env, dom.name)))
        cluster.drain([job])
        assert seen == [(cluster.shard_of("host02").env, "vm-host00-0")]

    def test_surrogate_is_never_a_placement_candidate(self):
        # A committed cross-rack migration leaves a cached surrogate
        # host in the source shard's topology; placement must not offer
        # it (the real capacity lives in another shard).
        from repro.cluster import NoValidHost, PlacementSpec
        cluster = sharded()
        job = cluster.submit(cluster.domains[0], "host03")
        cluster.drain([job])
        assert job.succeeded
        shard = cluster.shard_of("host00")
        assert "host03" in shard.surrogates
        manager = shard.scheduler.hostmanager
        names = [s.name for s in manager.filter_hosts(PlacementSpec())]
        assert names == ["host00", "host01"]
        with pytest.raises(NoValidHost):
            manager.select(PlacementSpec(), exclude=["host00", "host01"])

    def test_sharded_evacuation_stays_intra_rack(self):
        cluster = sharded(hosts_per_rack=3)
        jobs = cluster.evacuate("host00")
        cluster.drain(jobs)
        assert jobs and all(job.succeeded for job in jobs)
        assert all(job.destination.name in {"host01", "host02"}
                   for job in jobs)
        assert not cluster.host("host00").domains


class TestChurn:
    def test_config_validation(self):
        with pytest.raises(ReproError):
            ChurnConfig(duration=0.0)
        with pytest.raises(ReproError):
            ChurnConfig(arrival_rate=-1.0)

    def test_plan_is_deterministic_for_a_seed(self):
        config = ChurnConfig(duration=5.0, arrival_rate=2.0,
                             departure_rate=1.0, maintenance_interval=2.0,
                             rack_failure_times=(3.0,))
        plans = []
        for _ in range(2):
            generator = ChurnGenerator(sharded(seed=11), config)
            plans.append([(a.time, a.kind, a.shard_index, a.ordinal)
                          for a in generator.plan()])
        assert plans[0] == plans[1]
        assert plans[0] == sorted(plans[0])

    def test_seed_split_streams_independent_of_shard_count(self):
        # Shard 0's Poisson stream depends only on (seed, 0) and the
        # per-shard rate — not on how many other shards exist.
        def shard0_arrivals(nracks, cluster_rate):
            cluster = sharded(nracks=nracks, hosts_per_rack=2,
                              vms_per_host=1, seed=5)
            config = ChurnConfig(duration=10.0, arrival_rate=cluster_rate)
            return [a.time for a in ChurnGenerator(cluster, config).plan()
                    if a.shard_index == 0]

        assert shard0_arrivals(2, 2.0) == shard0_arrivals(3, 3.0)

    def test_rack_failure_times_validated(self):
        cluster = sharded()
        config = ChurnConfig(duration=5.0, rack_failure_times=(7.0,))
        with pytest.raises(ReproError):
            ChurnGenerator(cluster, config).plan()

    def test_churn_run_applies_and_conserves(self):
        cluster = sharded(hosts_per_rack=3)
        config = ChurnConfig(duration=8.0, arrival_rate=1.0,
                             departure_rate=0.5, maintenance_interval=3.0,
                             maintenance_hold=2.0,
                             rack_failure_times=(5.0,),
                             rack_failure_down_for=1.0)
        generator = ChurnGenerator(cluster, config)
        applied = generator.run()
        assert applied.get("maintenance", 0) >= 1
        assert applied.get("rack_failure", 0) == 1
        jobs = cluster.drain(generator.evacuation_jobs)
        assert all(job.status in ("done", "failed") for job in jobs)
        cluster.assert_conserved()
        # Maintenance windows expired and crashed racks recovered.
        assert all(host.available for host in cluster.hosts)

    def test_arrivals_attach_new_domains(self):
        cluster = sharded()
        before = len(cluster.domains)
        config = ChurnConfig(duration=5.0, arrival_rate=2.0)
        generator = ChurnGenerator(cluster, config)
        applied = generator.run()
        assert applied.get("arrival", 0) >= 1
        assert len(cluster.domains) == before + applied["arrival"]
        names = [d.name for d in cluster.domains]
        assert any(name.startswith("churn-rack") for name in names)


class TestSLO:
    @staticmethod
    def _job(name, submitted, ended, downtime=None, status="done"):
        from types import SimpleNamespace

        from repro.cluster.scheduler import MigrationJob

        job = MigrationJob(domain=SimpleNamespace(name=name),
                           destination=None)
        job.submitted_at = submitted
        job.ended_at = ended
        job.status = status
        if downtime is not None:
            job.report = SimpleNamespace(downtime=downtime)
        return job

    def test_makespan_percentiles(self):
        jobs = [self._job(f"t-{i}", 0.0, float(i + 1), downtime=0.01)
                for i in range(10)]
        pct = makespan_percentiles(jobs)
        assert pct["p50"] == pytest.approx(5.5)
        assert pct["p99"] == pytest.approx(9.91)
        assert makespan_percentiles([]) == {"p50": 0.0, "p95": 0.0,
                                            "p99": 0.0}

    def test_default_tenant_strips_ordinal(self):
        assert default_tenant("vm-host03-1") == "vm-host03"
        assert default_tenant("churn-rack0-7") == "churn-rack0"
        assert default_tenant("solo") == "solo"

    def test_budget_violation_and_summary(self):
        jobs = [self._job("acme-1", 0.0, 1.0, downtime=0.4),
                self._job("acme-2", 0.0, 2.0, downtime=0.4),
                self._job("beta-1", 0.0, 3.0, downtime=0.1)]
        report = slo_report(jobs, budgets={"acme": 0.5, "beta": 0.5})
        assert report.total == 3 and report.succeeded == 3
        assert report.makespan == pytest.approx(3.0)
        assert not report.ok
        assert [t.tenant for t in report.violations] == ["acme"]
        assert report.tenants["acme"].downtime == pytest.approx(0.8)
        assert "acme" in report.summary()

    def test_failed_migration_violates_regardless_of_budget(self):
        jobs = [self._job("acme-1", 0.0, 1.0, status="failed")]
        report = slo_report(jobs)
        assert report.failed == 1
        assert report.tenants["acme"].violated
        assert not report.ok

    def test_no_budget_means_no_downtime_violation(self):
        jobs = [self._job("acme-1", 0.0, 1.0, downtime=99.0)]
        assert slo_report(jobs).ok

    def test_slo_report_on_real_evacuation(self):
        cluster = sharded(hosts_per_rack=3)
        jobs = cluster.drain(cluster.evacuate("host00"))
        report = slo_report(jobs, default_budget=10.0)
        assert report.ok
        assert report.total == len(jobs)
        assert report.makespan == pytest.approx(cluster.makespan(jobs))
