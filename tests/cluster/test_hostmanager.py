"""HostManager: filter chains, weigher combos, NoValidHost, tie-breaks."""

import pytest

from repro.cluster import (HostManager, NoValidHost, PlacementSpec,
                           build_cluster, register_filter, register_weigher)
from repro.cluster.hostmanager import FILTERS, WEIGHERS
from repro.errors import MigrationError

SMALL = dict(nblocks=256, npages=64)


def rack_bed(nhosts=6, vms_per_host=1, rack_size=3, **kw):
    return build_cluster(nhosts=nhosts, vms_per_host=vms_per_host,
                         wiring="rack", rack_size=rack_size, **SMALL, **kw)


class TestFilters:
    def test_up_filter_skips_crashed_hosts(self):
        bed = rack_bed()
        manager = bed.scheduler.hostmanager
        bed.host("host01").crash()
        names = [s.name for s in manager.filter_hosts(PlacementSpec())]
        assert "host01" not in names
        assert len(names) == 5

    def test_up_filter_skips_maintenance_hosts(self):
        bed = rack_bed()
        manager = bed.scheduler.hostmanager
        bed.host("host02").enter_maintenance()
        names = [s.name for s in manager.filter_hosts(PlacementSpec())]
        assert "host02" not in names
        bed.host("host02").exit_maintenance()
        names = [s.name for s in manager.filter_hosts(PlacementSpec())]
        assert "host02" in names

    def test_capacity_filter_rejects_full_hosts(self):
        bed = rack_bed(vms_per_host=2)
        manager = HostManager(bed.migrator.topology, capacity=2)
        with pytest.raises(NoValidHost) as excinfo:
            manager.filter_hosts(PlacementSpec())
        assert excinfo.value.eliminated == {"capacity": 6}
        manager.capacity = 3
        manager.refresh()
        assert len(manager.filter_hosts(PlacementSpec())) == 6

    def test_capacity_counts_inbound_planned_load(self):
        bed = rack_bed(vms_per_host=1)
        inbound = {"host01": 2}
        manager = HostManager(bed.migrator.topology, capacity=3,
                              inbound=inbound)
        assert manager.state_of("host01").planned_load == 3
        names = [s.name for s in manager.filter_hosts(PlacementSpec())]
        assert "host01" not in names

    def test_affinity_required_rack_and_anti_affinity(self):
        bed = rack_bed()
        manager = bed.scheduler.hostmanager
        spec = PlacementSpec(required_rack="rack1",
                             anti_affinity=("host04",))
        names = [s.name for s in manager.filter_hosts(spec)]
        assert names == ["host03", "host05"]

    def test_source_host_is_never_a_candidate(self):
        bed = rack_bed()
        manager = bed.scheduler.hostmanager
        domain = bed.host("host00").domains[0]
        names = [s.name for s in
                 manager.filter_hosts(PlacementSpec(domain=domain))]
        assert "host00" not in names

    def test_link_headroom_filter_uses_manager_ceiling(self):
        bed = rack_bed()
        manager = HostManager(bed.migrator.topology,
                              filters=("up", "link-headroom"),
                              link_headroom=2)
        manager.note_link("host01", +1)
        manager.note_link("host01", +1)
        names = [s.name for s in manager.filter_hosts(PlacementSpec())]
        assert "host01" not in names
        manager.note_link("host01", -1)
        names = [s.name for s in manager.filter_hosts(PlacementSpec())]
        assert "host01" in names

    def test_unknown_filter_or_weigher_name_rejected(self):
        bed = rack_bed()
        with pytest.raises(MigrationError):
            HostManager(bed.migrator.topology, filters=("up", "bogus"))
        with pytest.raises(MigrationError):
            HostManager(bed.migrator.topology, weighers=("bogus",))


class TestNoValidHost:
    def test_typed_error_with_elimination_breakdown(self):
        bed = rack_bed(nhosts=3, rack_size=3)
        for host in bed.hosts:
            host.crash()
        manager = bed.scheduler.hostmanager
        with pytest.raises(NoValidHost) as excinfo:
            manager.select(PlacementSpec())
        assert isinstance(excinfo.value, MigrationError)
        assert excinfo.value.eliminated == {"up": 3}

    def test_everything_excluded_reports_no_candidates(self):
        bed = rack_bed(nhosts=3, rack_size=3)
        manager = bed.scheduler.hostmanager
        with pytest.raises(NoValidHost) as excinfo:
            manager.filter_hosts(PlacementSpec(),
                                 exclude=[h.name for h in bed.hosts])
        assert excinfo.value.eliminated == {}


class TestWeighers:
    def test_least_loaded_prefers_emptiest_host(self):
        bed = rack_bed(vms_per_host=1)
        manager = bed.scheduler.hostmanager
        bed.host("host05").detach_domain(
            bed.host("host05").domains[0].domain_id)
        assert manager.select(PlacementSpec()).name == "host05"

    def test_tie_break_is_lowest_host_name(self):
        bed = rack_bed(vms_per_host=1)
        manager = bed.scheduler.hostmanager
        # All hosts carry identical load: name decides, deterministically.
        assert manager.select(PlacementSpec()).name == "host00"
        domain = bed.host("host00").domains[0]
        assert manager.select(PlacementSpec(domain=domain)).name == "host01"

    def test_locality_weigher_keeps_move_in_source_rack(self):
        bed = rack_bed(vms_per_host=1)
        manager = HostManager(bed.migrator.topology,
                              weighers=(("least-loaded", 1.0),
                                        ("locality", 10.0)))
        domain = bed.host("host04").domains[0]
        # host04 lives in rack1; even after emptying a rack0 host, the
        # heavily weighted locality term keeps the move inside rack1.
        bed.host("host00").detach_domain(
            bed.host("host00").domains[0].domain_id)
        winner = manager.select(PlacementSpec(domain=domain))
        assert winner.name in {"host03", "host05"}

    def test_spread_weigher_fans_out_inbound_bursts(self):
        bed = rack_bed(vms_per_host=1)
        inbound = {}
        manager = HostManager(bed.migrator.topology,
                              weighers=("spread",), inbound=inbound)
        first = manager.select(PlacementSpec()).name
        inbound[first] = 1
        second = manager.select(PlacementSpec()).name
        assert second != first

    def test_weigher_combo_weighted_sum(self):
        bed = rack_bed(vms_per_host=1)
        inbound = {"host00": 0, "host01": 3}
        manager = HostManager(bed.migrator.topology,
                              weighers=(("least-loaded", 1.0),
                                        ("spread", 0.1)),
                              inbound=inbound)
        scored = manager.weigh_hosts(
            manager.filter_hosts(PlacementSpec()), PlacementSpec())
        by_name = {state.name: score for score, state in scored}
        # host01: planned 1+3=4 -> -4.0 - 0.3; host00: -1.0 - 0.0
        assert by_name["host00"] == pytest.approx(-1.0)
        assert by_name["host01"] == pytest.approx(-4.3)
        assert scored[0][1].name == "host00"


class TestRegistry:
    def test_custom_filter_and_weigher_plug_in(self):
        bed = rack_bed(vms_per_host=1)

        @register_filter("test-odd-only")
        def odd_only(state, spec):
            return int(state.name[-1]) % 2 == 1

        @register_weigher("test-highest-name")
        def highest_name(state, spec):
            return float(int(state.name[-1]))

        try:
            manager = HostManager(bed.migrator.topology,
                                  filters=("up", "test-odd-only"),
                                  weighers=("test-highest-name",))
            assert manager.select(PlacementSpec()).name == "host05"
        finally:
            del FILTERS["test-odd-only"]
            del WEIGHERS["test-highest-name"]


class TestSchedulerIntegration:
    def test_scheduler_places_through_hostmanager(self):
        bed = rack_bed(vms_per_host=1)
        victim = bed.host("host00")
        jobs = bed.scheduler.evacuate(victim)
        bed.scheduler.drain(jobs)
        assert all(job.succeeded for job in jobs)
        assert not victim.domains

    def test_evacuation_avoids_maintenance_destination(self):
        bed = rack_bed(vms_per_host=1)
        bed.host("host01").enter_maintenance()
        bed.host("host02").enter_maintenance()
        jobs = bed.scheduler.evacuate(bed.host("host00"))
        bed.scheduler.drain(jobs)
        assert all(job.succeeded for job in jobs)
        assert all(job.destination.name in {"host03", "host04", "host05"}
                   for job in jobs)
