"""Forked drain: bit-identical outcomes, group partitioning, patch-back."""

import dataclasses

import pytest

from repro.cluster import build_sharded_cluster
from repro.sim.parallel import fork_available

SMALL = dict(nblocks=256, npages=64)


def sharded(**kw):
    return build_sharded_cluster(nracks=2, hosts_per_rack=2,
                                 vms_per_host=2, **SMALL, **kw)


def submit_wave(cluster):
    """A mixed wave: two intra-rack moves plus one cross-rack move."""
    return [cluster.submit(cluster.domains[0], "host01"),   # rack0 local
            cluster.submit(cluster.domains[4], "host03"),   # rack1 local
            cluster.submit(cluster.domains[2], "host02")]   # rack0 -> rack1


def outcomes(jobs):
    return [(job.status, job.started_at, job.ended_at,
             dataclasses.asdict(job.report)) for job in jobs]


class TestWorkerGroups:
    def test_independent_racks_are_separate_groups(self):
        cluster = sharded()
        assert cluster.worker_groups() == [[0], [1]]

    def test_live_cross_migration_couples_racks(self):
        cluster = sharded()
        cluster.submit(cluster.domains[0], "host02")  # rack0 -> rack1
        assert cluster.worker_groups() == [[0, 1]]

    def test_groups_separate_again_after_drain(self):
        cluster = sharded()
        job = cluster.submit(cluster.domains[0], "host02")
        cluster.drain([job])
        assert job.succeeded
        assert cluster.worker_groups() == [[0], [1]]


class TestForkedDrainEquivalence:
    @pytest.fixture(autouse=True)
    def _needs_fork(self):
        if not fork_available():
            pytest.skip("platform cannot fork")

    def test_mixed_wave_identical_to_inline(self):
        inline = sharded()
        inline_jobs = submit_wave(inline)
        inline.drain(inline_jobs)

        forked = sharded(workers="fork")
        forked_jobs = submit_wave(forked)
        forked.drain(forked_jobs, nworkers=2)

        assert all(job.succeeded for job in forked_jobs)
        assert outcomes(forked_jobs) == outcomes(inline_jobs)
        assert forked.link_ledger() == inline.link_ledger()
        assert forked.makespan() == inline.makespan()
        assert forked.events_processed == inline.events_processed

    def test_workers_argument_overrides_backend(self):
        inline = sharded()
        inline_jobs = submit_wave(inline)
        inline.drain(inline_jobs)

        # Cluster built inline, fork requested per-drain.
        override = sharded()
        override_jobs = submit_wave(override)
        override.drain(override_jobs, workers="fork", nworkers=2)
        assert outcomes(override_jobs) == outcomes(inline_jobs)
        assert override.link_ledger() == inline.link_ledger()

    def test_engine_quiescent_after_forked_drain(self):
        cluster = sharded(workers="fork")
        jobs = submit_wave(cluster)
        cluster.drain(jobs, nworkers=2)
        assert cluster.engine.quiescent
        # A second wave on the patched parent still works inline (using a
        # domain the first wave never touched: the forked drain is an
        # accounting view, parent placement is unchanged).
        more = [cluster.submit(cluster.domains[3], "host00")]
        cluster.drain(more, workers="inline")
        assert all(job.succeeded for job in more)

    def test_failed_job_error_is_portable(self):
        # A crashed destination fails the job inside the forked child; the
        # exception must survive the pickle trip back to the parent.
        cluster = sharded(workers="fork")
        for host in cluster.hosts:
            if host.name == "host01":
                host.crashed = True
        job = cluster.submit(cluster.domains[0], "host01")
        cluster.drain([job], nworkers=1)
        assert job.status == "failed"
        assert job.error is not None


class TestInlineFallback:
    def test_fork_backend_with_workers_disabled(self, monkeypatch):
        monkeypatch.setenv("REPRO_FORK_WORKERS", "0")
        inline = sharded()
        inline_jobs = submit_wave(inline)
        inline.drain(inline_jobs)

        fallback = sharded(workers="fork")
        fallback_jobs = submit_wave(fallback)
        fallback.drain(fallback_jobs)
        assert outcomes(fallback_jobs) == outcomes(inline_jobs)
        assert fallback.link_ledger() == inline.link_ledger()
