"""ClusterScheduler behaviour: evacuation, admission, limits, policies."""

import pytest

from repro.cluster import (RoundRobin, assert_conserved, audit_link_bytes,
                           build_cluster, least_loaded, pack_smallest_name)
from repro.errors import MigrationError, ReproError
from repro.vm import Domain, GuestMemory

SMALL = dict(nblocks=256, npages=64)


def sample_peak(bed, probe, interval=1e-3):
    """Background process recording the peak value of ``probe()``."""
    peak = [0]

    def proc(env):
        while True:
            peak[0] = max(peak[0], probe())
            yield env.timeout(interval)

    bed.env.process(proc(bed.env), name="peak-probe")
    return peak


class TestEvacuate:
    def test_evacuation_empties_host(self):
        bed = build_cluster(nhosts=4, vms_per_host=2, **SMALL)
        victim = bed.hosts[0]
        jobs = bed.scheduler.evacuate(victim)
        assert len(jobs) == 2
        bed.scheduler.drain(jobs)
        assert not victim.domains
        assert all(job.succeeded for job in jobs)
        assert all(job.report is not None for job in jobs)
        assert_conserved(bed.migrator.migrations)

    def test_least_loaded_spreads_placements(self):
        # 4 VMs leaving one host of a 5-host cluster: with planned-load
        # tracking each of the 4 surviving hosts receives exactly one.
        bed = build_cluster(nhosts=5, vms_per_host=4, **SMALL)
        for host in bed.hosts[1:]:
            for domain in list(host.domains):
                host.detach_domain(domain.domain_id)
        victim = bed.hosts[0]
        jobs = bed.scheduler.evacuate(victim)
        bed.scheduler.drain(jobs)
        assert not victim.domains
        assert [len(h.domains) for h in bed.hosts[1:]] == [1, 1, 1, 1]

    def test_evacuate_skips_crashed_candidates(self):
        bed = build_cluster(nhosts=3, vms_per_host=1, **SMALL)
        bed.hosts[1].crashed = True
        jobs = bed.scheduler.evacuate(bed.hosts[0])
        bed.scheduler.drain(jobs)
        assert all(job.succeeded for job in jobs)
        assert all(job.destination is bed.hosts[2] for job in jobs)

    def test_evacuate_with_no_candidates_raises(self):
        bed = build_cluster(nhosts=2, vms_per_host=1, **SMALL)
        bed.hosts[1].crashed = True
        with pytest.raises(MigrationError):
            bed.scheduler.evacuate(bed.hosts[0])

    def test_makespan_covers_submission_to_completion(self):
        bed = build_cluster(nhosts=3, vms_per_host=2, **SMALL)
        jobs = bed.scheduler.evacuate(bed.hosts[0])
        bed.scheduler.drain(jobs)
        makespan = bed.scheduler.makespan(jobs)
        assert makespan > 0
        assert makespan == pytest.approx(
            max(j.ended_at for j in jobs) - min(j.submitted_at for j in jobs))


class TestAdmissionControl:
    def test_concurrency_cap_is_respected(self):
        bed = build_cluster(nhosts=5, vms_per_host=8, max_concurrent=2,
                            **SMALL)
        peak = sample_peak(bed, lambda: bed.scheduler.running)
        jobs = bed.scheduler.evacuate(bed.hosts[0])
        assert len(jobs) == 8
        bed.scheduler.drain(jobs)
        assert all(job.succeeded for job in jobs)
        assert peak[0] == 2

    def test_queued_jobs_wait(self):
        bed = build_cluster(nhosts=3, vms_per_host=4, max_concurrent=1,
                            **SMALL)
        jobs = bed.scheduler.evacuate(bed.hosts[0])
        bed.scheduler.drain(jobs)
        # Serial drain: every job after the first queued behind it.
        waits = sorted(job.queue_time for job in jobs)
        assert waits[0] == 0.0
        assert all(wait > 0 for wait in waits[1:])

    def test_serial_vs_concurrent_makespan(self):
        serial = build_cluster(nhosts=5, vms_per_host=4, max_concurrent=1,
                               **SMALL)
        serial.scheduler.drain(serial.scheduler.evacuate(serial.hosts[0]))
        wide = build_cluster(nhosts=5, vms_per_host=4, max_concurrent=4,
                             **SMALL)
        wide.scheduler.drain(wide.scheduler.evacuate(wide.hosts[0]))
        assert wide.scheduler.makespan() < serial.scheduler.makespan()

    def test_invalid_limits_rejected(self):
        bed = build_cluster(nhosts=2, vms_per_host=0, **SMALL)
        from repro.cluster import ClusterScheduler
        with pytest.raises(MigrationError):
            ClusterScheduler(bed.env, bed.migrator, max_concurrent=0)
        with pytest.raises(MigrationError):
            ClusterScheduler(bed.env, bed.migrator, per_link_limit=0)


class TestPerLinkLimits:
    def test_per_link_limit_serialises_shared_uplink(self):
        # Star wiring: every evacuation crosses the victim's uplink, so a
        # per-link limit of 1 serialises the drain even with a wide
        # admission cap.
        bed = build_cluster(nhosts=4, vms_per_host=3, wiring="star",
                            max_concurrent=8, per_link_limit=1, **SMALL)
        peak = sample_peak(
            bed, lambda: sum(1 for j in bed.scheduler.jobs
                             if j.status == "running"))
        jobs = bed.scheduler.evacuate(bed.hosts[0])
        bed.scheduler.drain(jobs)
        assert all(job.succeeded for job in jobs)
        assert peak[0] == 1
        assert_conserved(bed.migrator.migrations)

    def test_disjoint_routes_run_concurrently(self):
        # Full wiring: host00->host02 and host01->host03 share no link, so
        # per_link_limit=1 still lets both run at once.
        bed = build_cluster(nhosts=4, vms_per_host=1, wiring="full",
                            max_concurrent=8, per_link_limit=1, **SMALL)
        peak = sample_peak(
            bed, lambda: sum(1 for j in bed.scheduler.jobs
                             if j.status == "running"))
        j1 = bed.scheduler.submit(bed.domains_on(bed.hosts[0])[0],
                                  bed.hosts[2])
        j2 = bed.scheduler.submit(bed.domains_on(bed.hosts[1])[0],
                                  bed.hosts[3])
        bed.scheduler.drain([j1, j2])
        assert j1.succeeded and j2.succeeded
        assert peak[0] == 2


class TestRebalance:
    def _lopsided(self):
        bed = build_cluster(nhosts=3, vms_per_host=0, **SMALL)
        heavy = bed.hosts[0]
        for v in range(4):
            vbd = heavy.prepare_vbd(SMALL["nblocks"])
            vbd.write(0, SMALL["nblocks"])
            domain = Domain(bed.env,
                            GuestMemory(SMALL["npages"], clock=heavy.clock),
                            name=f"vm-extra-{v}")
            heavy.attach_domain(domain, vbd)
        return bed

    def test_rebalance_spreads_load(self):
        bed = self._lopsided()
        assert [len(h.domains) for h in bed.hosts] == [4, 0, 0]
        jobs = bed.scheduler.rebalance()
        bed.scheduler.drain(jobs)
        assert all(job.succeeded for job in jobs)
        # ceil(4/3) = 2: heavy host drops to the ceiling, the rest
        # absorb one each.
        assert sorted(len(h.domains) for h in bed.hosts) == [1, 1, 2]

    def test_rebalance_on_balanced_cluster_is_a_noop(self):
        bed = build_cluster(nhosts=3, vms_per_host=2, **SMALL)
        assert bed.scheduler.rebalance() == []


class TestPolicies:
    def test_round_robin_cycles_destinations(self):
        bed = build_cluster(nhosts=4, vms_per_host=3, **SMALL)
        jobs = bed.scheduler.evacuate(bed.hosts[0], policy=RoundRobin())
        assert [j.destination.name for j in jobs] == [
            "host01", "host02", "host03"]
        bed.scheduler.drain(jobs)
        assert all(job.succeeded for job in jobs)

    def test_pack_smallest_name_concentrates(self):
        bed = build_cluster(nhosts=4, vms_per_host=2, **SMALL)
        jobs = bed.scheduler.evacuate(bed.hosts[0],
                                      policy=pack_smallest_name)
        assert {j.destination.name for j in jobs} == {"host01"}
        bed.scheduler.drain(jobs)
        assert len(bed.hosts[1].domains) == 4

    def test_least_loaded_prefers_lightest_host(self):
        bed = build_cluster(nhosts=3, vms_per_host=0, **SMALL)
        loads = {"host01": 3, "host02": 1}
        pick = least_loaded(None, bed.hosts[1:], loads)
        assert pick is bed.hosts[2]


class TestFailureContainment:
    def test_crashed_destination_fails_only_its_job(self):
        bed = build_cluster(nhosts=4, vms_per_host=1, **SMALL)
        bed.hosts[3].crashed = True
        victim = bed.hosts[0]
        domain = bed.domains_on(victim)[0]
        doomed = bed.scheduler.submit(domain, bed.hosts[3])
        healthy = bed.scheduler.submit(bed.domains_on(bed.hosts[1])[0],
                                       bed.hosts[2])
        bed.scheduler.drain([doomed, healthy])

        assert doomed.status == "failed"
        assert isinstance(doomed.error, ReproError)
        assert doomed.report is not None and doomed.report.extra["failed"]
        assert domain.host is victim and domain.running

        assert healthy.succeeded
        assert bed.scheduler.makespan() > 0

    def test_homeless_domain_fails_fast(self):
        bed = build_cluster(nhosts=2, vms_per_host=1, **SMALL)
        stray = Domain(bed.env, GuestMemory(SMALL["npages"],
                                            clock=bed.hosts[0].clock),
                       name="stray")
        job = bed.scheduler.submit(stray, bed.hosts[1])
        bed.scheduler.drain([job])
        assert job.status == "failed"
        assert isinstance(job.error, MigrationError)

    def test_planned_load_recovers_after_failure(self):
        bed = build_cluster(nhosts=3, vms_per_host=1, **SMALL)
        bed.hosts[2].crashed = True
        job = bed.scheduler.submit(bed.domains_on(bed.hosts[0])[0],
                                   bed.hosts[2])
        bed.scheduler.drain([job])
        assert job.status == "failed"
        loads = bed.scheduler.planned_load()
        assert loads["host02"] == 1  # resident only, no stuck inbound


class TestReplaceablePlacement:
    """Mid-churn crash regression: an evacuation whose scheduler-chosen
    destination dies while the job queues must be re-placed at admission
    instead of migrating into a dead host."""

    def _queued_evacuation(self, bed):
        # Occupy the single admission slot so the evacuation job queues
        # long enough for its destination to fail underneath it.
        blocker = bed.scheduler.submit(bed.domains_on(bed.hosts[3])[0],
                                       bed.hosts[2])
        jobs = bed.scheduler.evacuate(bed.hosts[0])
        assert len(jobs) == 1
        # Least-loaded + name tie-break: host01 is the planned target.
        assert jobs[0].destination.name == "host01"
        assert jobs[0].replaceable
        return blocker, jobs[0]

    def test_crashed_destination_is_replaced_at_admission(self):
        from repro.faults import FaultInjector, FaultPlan

        bed = build_cluster(nhosts=4, vms_per_host=1, max_concurrent=1,
                            **SMALL)
        blocker, job = self._queued_evacuation(bed)
        plan = FaultPlan().crash("host01", at=1e-4, down_for=1000.0)
        FaultInjector(bed.env, plan).inject(bed.migrator)
        bed.scheduler.drain([blocker, job])
        assert blocker.succeeded
        assert job.succeeded
        assert job.destination.name != "host01"
        assert not bed.hosts[0].domains
        assert_conserved(bed.migrator.migrations)

    def test_maintenance_destination_is_replaced_at_admission(self):
        bed = build_cluster(nhosts=4, vms_per_host=1, max_concurrent=1,
                            **SMALL)
        blocker, job = self._queued_evacuation(bed)
        bed.hosts[1].enter_maintenance()
        bed.scheduler.drain([blocker, job])
        assert blocker.succeeded and job.succeeded
        assert job.destination.name != "host01"

    def test_explicit_submission_still_fails_not_replaced(self):
        from repro.faults import FaultInjector, FaultPlan

        bed = build_cluster(nhosts=4, vms_per_host=1, max_concurrent=1,
                            **SMALL)
        blocker = bed.scheduler.submit(bed.domains_on(bed.hosts[3])[0],
                                       bed.hosts[2])
        explicit = bed.scheduler.submit(bed.domains_on(bed.hosts[0])[0],
                                        bed.hosts[1])
        assert not explicit.replaceable
        plan = FaultPlan().crash("host01", at=1e-4, down_for=1000.0)
        FaultInjector(bed.env, plan).inject(bed.migrator)
        bed.scheduler.drain([blocker, explicit])
        assert blocker.succeeded
        # The user asked for host01 specifically; the scheduler must not
        # silently reroute an explicit placement.
        assert explicit.status == "failed"
        assert explicit.destination.name == "host01"


class TestWirings:
    @pytest.mark.parametrize("wiring", ["full", "star", "rack"])
    def test_evacuation_works_on_every_wiring(self, wiring):
        bed = build_cluster(nhosts=4, vms_per_host=2, wiring=wiring,
                            rack_size=2, **SMALL)
        jobs = bed.scheduler.evacuate(bed.hosts[0])
        bed.scheduler.drain(jobs)
        assert not bed.hosts[0].domains
        assert all(job.succeeded for job in jobs)
        audits = audit_link_bytes(bed.migrator.migrations)
        assert audits and all(audit.conserved for audit in audits)

    def test_rack_wiring_routes_cross_rack_through_core(self):
        bed = build_cluster(nhosts=4, vms_per_host=1, wiring="rack",
                            rack_size=2, **SMALL)
        route = bed.migrator.topology.route(bed.hosts[0], bed.hosts[3])
        assert route == ["host00", "rack0", "core", "rack1", "host03"]
