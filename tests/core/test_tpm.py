"""Integration-grade unit tests for the full Three-Phase Migration."""

import numpy as np
import pytest

from repro.core import IM_TRACKING_NAME, MigrationConfig
from repro.errors import MigrationError
from repro.units import MB


class TestQuietMigration:
    def test_report_shape(self, bed):
        report = bed.migrate()
        assert report.scheme == "tpm"
        assert not report.incremental
        assert report.consistency_verified
        assert len(report.disk_iterations) == 1
        assert report.disk_iterations[0].units_sent == bed.vbd.nblocks
        assert report.remaining_dirty_blocks == 0

    def test_phase_ordering(self, bed):
        r = bed.migrate()
        assert (r.started_at <= r.precopy_disk_started_at
                <= r.precopy_disk_ended_at <= r.precopy_mem_started_at
                <= r.precopy_mem_ended_at <= r.suspended_at
                <= r.resumed_at <= r.ended_at)

    def test_domain_lands_on_destination(self, bed):
        bed.migrate()
        assert bed.domain.host is bed.destination
        assert bed.domain.running

    def test_ledger_has_all_categories(self, bed):
        report = bed.migrate()
        for category in ("disk", "memory", "bitmap", "cpu", "control"):
            assert report.bytes_by_category.get(category, 0) > 0, category

    def test_migrated_data_at_least_disk_plus_memory(self, bed):
        report = bed.migrate()
        floor = bed.vbd.nbytes + bed.domain.memory.nbytes
        assert report.migrated_bytes >= floor

    def test_downtime_far_below_total(self, bed):
        report = bed.migrate()
        assert report.downtime < 0.05 * report.total_migration_time

    def test_im_tracking_started_on_destination(self, bed):
        bed.migrate()
        driver = bed.destination.driver_of(bed.domain.domain_id)
        assert driver.tracking_bitmap(IM_TRACKING_NAME).count() == 0

    def test_migrating_from_wrong_host_rejected(self, bed):
        from repro.core import ThreePhaseMigration

        fwd, rev = bed.channels()
        wrong = ThreePhaseMigration(bed.env, bed.domain, bed.destination,
                                    bed.source, fwd, rev, bed.config)

        def proc(env):
            return (yield from wrong.run())

        with pytest.raises(MigrationError):
            bed.env.run(until=bed.env.process(proc(bed.env)))


class TestBusyMigration:
    def test_consistency_under_steady_writes(self, bed):
        bed.random_writer(region=(0, 400), interval=0.003)
        report = bed.migrate()
        assert report.consistency_verified
        assert len(report.disk_iterations) >= 2
        assert report.retransferred_blocks > 0

    def test_workload_continues_after_migration(self, bed):
        bed.random_writer(region=(0, 400), interval=0.003)
        bed.migrate()
        writes_before = bed.destination.driver_of(
            bed.domain.domain_id).writes
        bed.env.run(until=bed.env.now + 1.0)
        writes_after = bed.destination.driver_of(
            bed.domain.domain_id).writes
        assert writes_after > writes_before

    def test_guest_io_gap_is_about_downtime(self, bed):
        """The service outage seen by the guest matches the freeze window."""
        gaps = []
        last = [0.0]

        def guest(env):
            while True:
                yield from bed.domain.write(1)
                gaps.append(env.now - last[0])
                last[0] = env.now
                yield env.timeout(0.002)

        bed.env.process(guest(bed.env))
        report = bed.migrate()
        bed.env.run(until=bed.env.now + 0.1)
        # Worst-case gap is dominated by the freeze, not by orders more.
        assert max(gaps) == pytest.approx(report.downtime, abs=0.05)

    def test_memory_rounds_run(self, bed):
        bed.random_writer(region=(0, 400), interval=0.003, touch_pages=16)
        report = bed.migrate()
        assert len(report.mem_rounds) >= 1
        assert report.mem_rounds[0].units_sent == bed.domain.memory.npages


class TestByteModeIntegrity:
    def test_actual_bytes_identical(self, byte_bed):
        byte_bed.random_writer(region=(0, 64), interval=0.002)
        report = byte_bed.migrate()
        assert report.consistency_verified
        src_vbd = byte_bed.vbd
        dst_vbd = byte_bed.destination.vbd_of(byte_bed.domain.domain_id)
        diff = src_vbd.diff_blocks(dst_vbd)
        im = byte_bed.destination.driver_of(
            byte_bed.domain.domain_id).tracking_bitmap(IM_TRACKING_NAME)
        # Bytes match everywhere the guest did not legitimately write.
        clean = np.setdiff1d(np.arange(src_vbd.nblocks), im.dirty_indices())
        assert np.array_equal(src_vbd.read_data(0, src_vbd.nblocks)[clean],
                              dst_vbd.read_data(0, dst_vbd.nblocks)[clean])
        assert set(diff.tolist()) <= set(im.dirty_indices().tolist())


class TestConfigVariants:
    def test_storage_only_migration(self, bed):
        report = bed.migrate(bed.config.replace(include_memory=False))
        assert report.consistency_verified
        assert report.mem_rounds == []
        assert "memory" not in report.bytes_by_category

    def test_layered_bitmap_layout(self, bed):
        report = bed.migrate(bed.config.replace(bitmap_layout="layered"))
        assert report.consistency_verified

    def test_rate_limit_slows_precopy(self, make_bed):
        times = {}
        for label, limit in (("fast", None), ("slow", 4 * MB)):
            fresh = make_bed()
            cfg = fresh.config.replace(rate_limit=limit)
            report = fresh.migrate(cfg)
            times[label] = (report.precopy_disk_ended_at
                            - report.precopy_disk_started_at)
        assert times["slow"] > 1.5 * times["fast"]

    def test_verify_can_be_disabled(self, bed):
        report = bed.migrate(bed.config.replace(verify_consistency=False))
        assert not report.consistency_verified

    def test_no_im_tracking_when_disabled(self, bed):
        from repro.errors import StorageError

        bed.migrate(bed.config.replace(track_incremental=False))
        driver = bed.destination.driver_of(bed.domain.domain_id)
        with pytest.raises(StorageError):
            driver.tracking_bitmap(IM_TRACKING_NAME)
