"""Tests for the implemented paper-§VII extensions: guest-aware migration
and the secondary-NIC service model."""

import numpy as np
import pytest

from repro.analysis import build_testbed, mean_rate
from repro.core import MigrationConfig
from repro.errors import ReproError
from repro.net import Link
from repro.units import MB
from repro.vm import Domain, GuestMemory


class TestGuestAware:
    def test_allocated_indices(self, make_bed):
        bed = make_bed(prefill=False)
        assert bed.vbd.allocated_indices().size == 0
        bed.vbd.write(10, 5)
        assert bed.vbd.allocated_indices().tolist() == [10, 11, 12, 13, 14]
        assert bed.vbd.allocated_fraction == pytest.approx(5 / 2000)

    def test_skips_unwritten_blocks(self, make_bed):
        bed = make_bed(prefill=False)
        bed.vbd.write(0, 500)  # guest installed 500 blocks of OS
        cfg = bed.config.replace(guest_aware=True)
        report = bed.migrate(cfg)
        assert report.consistency_verified
        assert report.disk_iterations[0].units_sent == 500
        assert report.extra["guest_aware_skipped_blocks"] == 1500

    def test_data_proportional_to_usage(self, make_bed):
        sizes = {}
        for fill in (0.25, 1.0):
            bed = make_bed(prefill=False)
            bed.vbd.write(0, int(bed.vbd.nblocks * fill))
            cfg = bed.config.replace(guest_aware=True)
            report = bed.migrate(cfg)
            sizes[fill] = report.bytes_by_category["disk"]
        assert sizes[0.25] < 0.3 * sizes[1.0]

    def test_disabled_by_default_transfers_everything(self, make_bed):
        bed = make_bed(prefill=False)
        bed.vbd.write(0, 10)
        report = bed.migrate()
        assert report.disk_iterations[0].units_sent == bed.vbd.nblocks
        assert "guest_aware_skipped_blocks" not in report.extra

    def test_guest_aware_consistent_under_writes(self, make_bed):
        bed = make_bed(prefill=False)
        bed.vbd.write(0, 800)
        bed.random_writer(region=(0, 1200), interval=0.005)
        cfg = bed.config.replace(guest_aware=True)
        bed.env.run(until=0.2)
        report = bed.migrate(cfg)
        # Writes beyond the initially-allocated region are caught by the
        # tracking bitmap and retransferred like any other dirt.
        assert report.consistency_verified

    def test_im_back_migration_ignores_guest_aware(self, make_bed):
        bed = make_bed(prefill=False)
        bed.vbd.write(0, 300)
        cfg = bed.config.replace(guest_aware=True)
        bed.migrate(cfg)
        bed.env.run(until=bed.env.now + 0.5)
        back = bed.migrate(cfg)
        assert back.incremental
        assert "guest_aware_skipped_blocks" not in back.extra
        assert back.consistency_verified


class TestServiceNic:
    SCALE = 0.005

    def test_unknown_mode_rejected(self):
        with pytest.raises(ReproError):
            build_testbed("specweb", scale=self.SCALE, service_nic="wifi")

    def test_service_bytes_cross_the_nic(self):
        bed = build_testbed("specweb", scale=self.SCALE,
                            service_nic="secondary")
        bed.start_workload()
        bed.run_for(5.0)
        assert bed.workload.service_link is not None
        assert bed.workload.service_link.bytes_sent > 0

    def test_shared_nic_degrades_service_during_migration(self):
        rates = {}
        # A 640 Mbit port: the service (~70 MB/s of responses) plus the
        # migration stream (~54 MB/s) cannot both fit, so sharing hurts.
        for mode in ("shared", "secondary"):
            bed = build_testbed("specweb", scale=self.SCALE,
                                service_nic=mode, seed=5,
                                link_bandwidth=80 * MB)
            bed.start_workload()
            bed.run_for(20.0)
            report = bed.migrate()
            baseline = mean_rate(bed.timeline, "specweb:throughput", 0, 20)
            during = mean_rate(bed.timeline, "specweb:throughput",
                               report.started_at, report.ended_at)
            rates[mode] = during / baseline
        # Secondary NIC protects the service; a shared port does not.
        assert rates["secondary"] > rates["shared"] + 0.1

    def test_secondary_nic_does_not_relieve_disk(self):
        """The paper's caveat: a second NIC has 'no effect on releasing
        the stress on disk' — a disk-bound workload still suffers."""
        from repro.analysis import performance_overhead

        bed = build_testbed("bonnie", scale=self.SCALE,
                            service_nic="secondary", seed=5)
        bed.start_workload()
        bed.run_for(20.0)
        report = bed.migrate()
        result = performance_overhead(
            bed.timeline, "bonnie:write",
            migration_window=(report.precopy_disk_started_at,
                              report.precopy_disk_ended_at),
            baseline_window=(0.0, 20.0))
        assert result.overhead_fraction > 0.2
