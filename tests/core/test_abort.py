"""Tests for migration cancellation (abort during pre-copy)."""

import numpy as np
import pytest

from repro.core import IM_TRACKING_NAME, TRACKING_NAME


class TestAbort:
    def test_abort_during_disk_precopy(self, bed):
        bed.random_writer(region=(0, 300), interval=0.005)

        def aborter(env):
            yield env.timeout(0.05)  # mid disk pre-copy
            assert bed.migrator.abort(bed.domain)

        bed.env.process(aborter(bed.env))
        report = bed.migrate()
        assert report.extra["aborted"] is True
        # The domain never moved and never stopped.
        assert bed.domain.host is bed.source
        assert bed.domain.running
        assert report.suspended_at == 0.0  # freeze never happened

    def test_abort_cleans_up_tracking(self, bed):
        def aborter(env):
            yield env.timeout(0.05)
            bed.migrator.abort(bed.domain)

        bed.env.process(aborter(bed.env))
        bed.migrate()
        driver = bed.source.driver_of(bed.domain.domain_id)
        from repro.errors import StorageError

        with pytest.raises(StorageError):
            driver.tracking_bitmap(TRACKING_NAME)

    def test_workload_unaffected_by_abort(self, bed):
        bed.random_writer(region=(0, 300), interval=0.005)

        def aborter(env):
            yield env.timeout(0.05)
            bed.migrator.abort(bed.domain)

        bed.env.process(aborter(bed.env))
        bed.migrate()
        writes_before = bed.source.driver_of(bed.domain.domain_id).writes
        bed.env.run(until=bed.env.now + 0.5)
        assert bed.source.driver_of(
            bed.domain.domain_id).writes > writes_before

    def test_retry_after_abort_succeeds(self, bed):
        def aborter(env):
            yield env.timeout(0.05)
            bed.migrator.abort(bed.domain)

        bed.env.process(aborter(bed.env))
        first = bed.migrate()
        assert first.extra.get("aborted")
        second = bed.migrate()
        assert not second.extra.get("aborted")
        assert second.consistency_verified
        assert bed.domain.host is bed.destination

    def test_abort_too_late_is_refused(self, bed):
        outcome = {}

        def aborter(env):
            # Wait until the migration is clearly past the freeze.
            while bed.domain.host is bed.source:
                yield env.timeout(0.01)
            outcome["accepted"] = bed.migrator.abort(bed.domain)

        bed.env.process(aborter(bed.env))
        report = bed.migrate()
        assert not report.extra.get("aborted")
        assert outcome.get("accepted") in (False, None)

    def test_abort_without_active_migration(self, bed):
        assert bed.migrator.abort(bed.domain) is False

    def test_aborted_im_attempt_preserves_stale_copy(self, bed):
        bed.random_writer(region=(0, 300), interval=0.005)
        bed.migrate()  # primary: source -> destination
        bed.env.run(until=bed.env.now + 0.5)

        def aborter(env):
            yield env.timeout(0.01)
            bed.migrator.abort(bed.domain)

        bed.env.process(aborter(bed.env))
        aborted = bed.migrate()  # IM attempt back, cancelled
        assert aborted.extra.get("aborted")
        assert bed.domain.host is bed.destination
        # The stale copy survives; a later retry is still incremental.
        retry = bed.migrate()
        assert retry.incremental
        assert retry.consistency_verified

    def test_aborted_report_counts_transferred_bytes(self, bed):
        def aborter(env):
            yield env.timeout(0.05)
            bed.migrator.abort(bed.domain)

        bed.env.process(aborter(bed.env))
        report = bed.migrate()
        assert report.migrated_bytes > 0  # partial pre-copy was paid for


class TestAbortStateInvariance:
    """Property: an abort requested inside *any* disk pre-copy iteration
    leaves the source exactly as a migration-free run would — same
    tracking-bitmap registry, no memory logging, the domain running on
    the source, and (absent guest writes) a bit-identical VBD."""

    WRITER = dict(region=(0, 400), interval=0.004, seed=3)

    def _probe_boundaries(self, make_bed, with_writer):
        """Iteration end times of an identical, uninterrupted migration."""
        bed = make_bed()
        if with_writer:
            bed.random_writer(**self.WRITER)
        report = bed.migrate()
        return [it.ended_at for it in report.disk_iterations]

    def _assert_pristine(self, bed, report):
        assert report.extra["aborted"] is True
        assert bed.domain.host is bed.source
        assert bed.domain.running
        driver = bed.source.driver_of(bed.domain.domain_id)
        assert not driver.is_tracking  # registry exactly as pre-migration
        assert not bed.domain.memory.logging

    def test_abort_at_every_iteration_boundary_with_writes(self, make_bed):
        boundaries = self._probe_boundaries(make_bed, with_writer=True)
        assert len(boundaries) >= 2  # the writer forces extra iterations
        for end in boundaries:
            bed = make_bed()
            bed.random_writer(**self.WRITER)

            def aborter(env, at=end):
                # Land the request *inside* the iteration; it takes
                # effect at this iteration's boundary.
                yield env.timeout(max(at - 1e-6, 0.0))
                bed.migrator.abort(bed.domain)

            bed.env.process(aborter(bed.env))
            report = bed.migrate()
            self._assert_pristine(bed, report)

    def test_abort_leaves_source_vbd_bit_identical(self, make_bed):
        boundaries = self._probe_boundaries(make_bed, with_writer=False)
        for end in boundaries:
            bed = make_bed()
            before = bed.vbd.snapshot()

            def aborter(env, at=end):
                yield env.timeout(max(at - 1e-6, 0.0))
                bed.migrator.abort(bed.domain)

            bed.env.process(aborter(bed.env))
            report = bed.migrate()
            self._assert_pristine(bed, report)
            assert np.array_equal(bed.vbd.snapshot(), before)
