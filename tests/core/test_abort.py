"""Tests for migration cancellation (abort during pre-copy)."""

import pytest

from repro.core import IM_TRACKING_NAME, TRACKING_NAME


class TestAbort:
    def test_abort_during_disk_precopy(self, bed):
        bed.random_writer(region=(0, 300), interval=0.005)

        def aborter(env):
            yield env.timeout(0.05)  # mid disk pre-copy
            assert bed.migrator.abort(bed.domain)

        bed.env.process(aborter(bed.env))
        report = bed.migrate()
        assert report.extra["aborted"] is True
        # The domain never moved and never stopped.
        assert bed.domain.host is bed.source
        assert bed.domain.running
        assert report.suspended_at == 0.0  # freeze never happened

    def test_abort_cleans_up_tracking(self, bed):
        def aborter(env):
            yield env.timeout(0.05)
            bed.migrator.abort(bed.domain)

        bed.env.process(aborter(bed.env))
        bed.migrate()
        driver = bed.source.driver_of(bed.domain.domain_id)
        from repro.errors import StorageError

        with pytest.raises(StorageError):
            driver.tracking_bitmap(TRACKING_NAME)

    def test_workload_unaffected_by_abort(self, bed):
        bed.random_writer(region=(0, 300), interval=0.005)

        def aborter(env):
            yield env.timeout(0.05)
            bed.migrator.abort(bed.domain)

        bed.env.process(aborter(bed.env))
        bed.migrate()
        writes_before = bed.source.driver_of(bed.domain.domain_id).writes
        bed.env.run(until=bed.env.now + 0.5)
        assert bed.source.driver_of(
            bed.domain.domain_id).writes > writes_before

    def test_retry_after_abort_succeeds(self, bed):
        def aborter(env):
            yield env.timeout(0.05)
            bed.migrator.abort(bed.domain)

        bed.env.process(aborter(bed.env))
        first = bed.migrate()
        assert first.extra.get("aborted")
        second = bed.migrate()
        assert not second.extra.get("aborted")
        assert second.consistency_verified
        assert bed.domain.host is bed.destination

    def test_abort_too_late_is_refused(self, bed):
        outcome = {}

        def aborter(env):
            # Wait until the migration is clearly past the freeze.
            while bed.domain.host is bed.source:
                yield env.timeout(0.01)
            outcome["accepted"] = bed.migrator.abort(bed.domain)

        bed.env.process(aborter(bed.env))
        report = bed.migrate()
        assert not report.extra.get("aborted")
        assert outcome.get("accepted") in (False, None)

    def test_abort_without_active_migration(self, bed):
        assert bed.migrator.abort(bed.domain) is False

    def test_aborted_im_attempt_preserves_stale_copy(self, bed):
        bed.random_writer(region=(0, 300), interval=0.005)
        bed.migrate()  # primary: source -> destination
        bed.env.run(until=bed.env.now + 0.5)

        def aborter(env):
            yield env.timeout(0.01)
            bed.migrator.abort(bed.domain)

        bed.env.process(aborter(bed.env))
        aborted = bed.migrate()  # IM attempt back, cancelled
        assert aborted.extra.get("aborted")
        assert bed.domain.host is bed.destination
        # The stale copy survives; a later retry is still incremental.
        retry = bed.migrate()
        assert retry.incremental
        assert retry.consistency_verified

    def test_aborted_report_counts_transferred_bytes(self, bed):
        def aborter(env):
            yield env.timeout(0.05)
            bed.migrator.abort(bed.domain)

        bed.env.process(aborter(bed.env))
        report = bed.migrate()
        assert report.migrated_bytes > 0  # partial pre-copy was paid for
