"""Unit tests for the Migrator façade and Incremental Migration logic."""

import pytest

from repro.core import Migrator
from repro.errors import MigrationError
from repro.sim import Environment
from repro.storage import PhysicalDisk
from repro.units import MiB
from repro.vm import Host


class TestTopology:
    def test_link_lookup_both_directions(self, bed):
        fwd, rev = bed.migrator.link_between(bed.source, bed.destination)
        fwd2, rev2 = bed.migrator.link_between(bed.destination, bed.source)
        assert fwd is rev2 and rev is fwd2

    def test_missing_link_rejected(self, bed):
        stranger = Host(bed.env, "stranger")
        with pytest.raises(MigrationError):
            bed.migrator.link_between(bed.source, stranger)

    def test_migrate_to_same_host_rejected(self, bed):
        def proc(env):
            yield from bed.migrator.migrate(bed.domain, bed.source)

        with pytest.raises(MigrationError):
            bed.env.run(until=bed.env.process(proc(bed.env)))

    def test_detached_domain_rejected(self, bed):
        bed.source.detach_domain(bed.domain.domain_id)

        def proc(env):
            yield from bed.migrator.migrate(bed.domain, bed.destination)

        with pytest.raises(MigrationError):
            bed.env.run(until=bed.env.process(proc(bed.env)))


class TestIncrementalMigration:
    def test_back_migration_is_incremental(self, bed):
        bed.random_writer(region=(0, 300), interval=0.005)
        primary = bed.migrate()
        assert not primary.incremental
        bed.env.run(until=bed.env.now + 2.0)
        back = bed.migrate()
        assert back.incremental
        assert back.consistency_verified

    def test_im_moves_far_less_data(self, bed):
        bed.random_writer(region=(0, 300), interval=0.005)
        primary = bed.migrate()
        bed.env.run(until=bed.env.now + 2.0)
        back = bed.migrate()
        assert back.migrated_bytes < 0.5 * primary.migrated_bytes
        assert back.disk_iterations[0].units_sent < bed.vbd.nblocks

    def test_im_is_faster(self, bed):
        bed.random_writer(region=(0, 300), interval=0.005)
        primary = bed.migrate()
        bed.env.run(until=bed.env.now + 2.0)
        back = bed.migrate()
        assert (back.total_migration_time
                < 0.8 * primary.total_migration_time)

    def test_repeated_round_trips_stay_incremental(self, bed):
        bed.random_writer(region=(0, 300), interval=0.005)
        bed.migrate()
        for _ in range(3):
            bed.env.run(until=bed.env.now + 1.0)
            report = bed.migrate()
            assert report.incremental
            assert report.consistency_verified

    def test_quiet_im_transfers_almost_nothing(self, bed):
        primary = bed.migrate()
        bed.env.run(until=bed.env.now + 1.0)  # no writes at all
        back = bed.migrate()
        assert back.incremental
        assert back.disk_iterations[0].units_sent == 0
        # Only memory + protocol crossed the wire.
        assert back.bytes_by_category.get("disk", 0) == 0

    def test_stale_copy_bookkeeping(self, bed):
        assert not bed.migrator.has_stale_copy(bed.domain, bed.source)
        bed.migrate()
        assert bed.migrator.has_stale_copy(bed.domain, bed.source)
        assert not bed.migrator.has_stale_copy(bed.domain, bed.destination)

    def test_third_host_forces_full_migration(self, bed):
        third = Host(bed.env, "third",
                     PhysicalDisk(bed.env, 100 * MiB, 100 * MiB, 0.1e-3),
                     bed.clock)
        bed.migrator.connect(bed.destination, third)
        bed.migrator.connect(third, bed.source)
        bed.migrate()  # source -> destination
        proc = bed.migrator.migrate_process(bed.domain, third)
        to_third = bed.env.run(until=proc)
        assert not to_third.incremental  # third never held a copy
        # ... and the original source's stale copy is now invalid:
        proc = bed.migrator.migrate_process(bed.domain, bed.source)
        back_home = bed.env.run(until=proc)
        assert not back_home.incremental

    def test_history_records_all_runs(self, bed):
        bed.migrate()
        bed.migrate()
        assert len(bed.migrator.history) == 2
        assert bed.migrator.history[1].incremental


class TestMultiHostIM:
    """The paper's future-work extension: IM among any recently used host."""

    def _ring(self, bed):
        third = Host(bed.env, "third",
                     PhysicalDisk(bed.env, 100 * MiB, 100 * MiB, 0.1e-3),
                     bed.clock)
        bed.migrator.multi_host_im = True
        bed.migrator.connect(bed.destination, third)
        bed.migrator.connect(third, bed.source)
        return third

    def _go(self, bed, destination):
        proc = bed.migrator.migrate_process(bed.domain, destination)
        return bed.env.run(until=proc)

    def test_return_after_two_hops_is_incremental(self, bed):
        third = self._ring(bed)
        bed.random_writer(region=(0, 300), interval=0.005)
        assert not self._go(bed, bed.destination).incremental  # A -> B
        bed.env.run(until=bed.env.now + 1.0)
        assert not self._go(bed, third).incremental            # B -> C
        bed.env.run(until=bed.env.now + 1.0)
        back = self._go(bed, bed.source)                       # C -> A
        assert back.incremental
        assert back.consistency_verified

    def test_all_stale_copies_usable_in_any_order(self, bed):
        third = self._ring(bed)
        bed.random_writer(region=(0, 300), interval=0.005)
        self._go(bed, bed.destination)      # A -> B
        self._go(bed, third)                # B -> C
        back_to_b = self._go(bed, bed.destination)  # C -> B
        assert back_to_b.incremental
        assert back_to_b.consistency_verified
        back_to_c = self._go(bed, third)    # B -> C again
        assert back_to_c.incremental
        assert back_to_c.consistency_verified

    def test_divergence_covers_all_hops(self, bed):
        """Blocks written on B and on C must both be in the A-return set."""
        third = self._ring(bed)
        self._go(bed, bed.destination)      # A -> B (quiet)

        def write_once(block):
            def proc(env):
                yield from bed.domain.write(block)
            bed.env.run(until=bed.env.process(proc(bed.env)))

        write_once(10)                      # written while on B
        self._go(bed, third)                # B -> C
        write_once(20)                      # written while on C
        back = self._go(bed, bed.source)    # C -> A, incremental
        assert back.incremental
        sent = back.disk_iterations[0].units_sent
        assert sent >= 2                    # both hop-writes included
        assert back.consistency_verified

    def test_disabled_by_default(self, bed):
        assert not bed.migrator.multi_host_im
