"""Unit tests for migration metrics and report arithmetic."""

import pytest

from repro.core import IterationStats, MigrationReport, PostCopyStats


class TestIterationStats:
    def test_duration_and_rates(self):
        it = IterationStats(index=1, units_sent=1000, bytes_sent=4096000,
                            started_at=10.0, ended_at=20.0, dirty_at_end=100)
        assert it.duration == 10.0
        assert it.transfer_rate == 100.0
        assert it.dirty_rate == 10.0

    def test_zero_duration(self):
        it = IterationStats(index=1, units_sent=0, bytes_sent=0,
                            started_at=5.0, ended_at=5.0, dirty_at_end=0)
        assert it.transfer_rate == float("inf")
        assert it.dirty_rate == 0.0


class TestPostCopyStats:
    def test_duration(self):
        pc = PostCopyStats(started_at=1.0, ended_at=1.5)
        assert pc.duration == pytest.approx(0.5)


class TestMigrationReport:
    def make_report(self):
        r = MigrationReport(scheme="tpm", workload="w")
        r.started_at = 0.0
        r.precopy_disk_started_at = 0.0
        r.precopy_disk_ended_at = 100.0
        r.precopy_mem_started_at = 100.0
        r.precopy_mem_ended_at = 110.0
        r.suspended_at = 110.0
        r.resumed_at = 110.05
        r.ended_at = 111.0
        r.postcopy = PostCopyStats(started_at=110.05, ended_at=111.0)
        r.bytes_by_category = {"disk": 1000, "memory": 500, "bitmap": 10,
                               "pull": 5, "control": 3, "cpu": 8}
        r.disk_iterations = [
            IterationStats(1, 10_000, 0, 0.0, 90.0, 500),
            IterationStats(2, 500, 0, 90.0, 95.0, 60),
            IterationStats(3, 60, 0, 95.0, 100.0, 10),
        ]
        return r

    def test_total_migration_time(self):
        assert self.make_report().total_migration_time == 111.0

    def test_downtime(self):
        assert self.make_report().downtime == pytest.approx(0.05)

    def test_migrated_bytes_sums_ledger(self):
        assert self.make_report().migrated_bytes == 1526

    def test_storage_bytes_excludes_memory(self):
        assert self.make_report().storage_bytes == 1015

    def test_retransferred_counts_iterations_after_first(self):
        assert self.make_report().retransferred_blocks == 560

    def test_storage_migration_time(self):
        r = self.make_report()
        # disk pre-copy (100) + freeze (0.05) + post-copy (0.95)
        assert r.storage_migration_time == pytest.approx(101.0)

    def test_precopy_duration(self):
        assert self.make_report().precopy_duration == pytest.approx(110.0)

    def test_summary_mentions_key_numbers(self):
        text = self.make_report().summary()
        assert "TPM" in text
        assert "downtime" in text
        assert "560 blocks" in text
