"""Unit tests for the iterative disk pre-copier."""

import numpy as np
import pytest

from repro.core import DiskPreCopier, MigrationConfig, TRACKING_NAME
from repro.core.transfer import BlockStreamer


def make_precopier(bed, config=None, initial=None):
    fwd, _ = bed.channels("precopy")
    cfg = config if config is not None else bed.config
    driver = bed.source.driver_of(bed.domain.domain_id)
    dest_vbd = bed.destination.prepare_vbd(bed.vbd.nblocks)
    streamer = BlockStreamer(bed.env, bed.source.disk, bed.vbd,
                             bed.destination.disk, dest_vbd, fwd, cfg)
    return DiskPreCopier(bed.env, driver, streamer, cfg,
                         initial_indices=initial), dest_vbd, driver


class TestQuietDisk:
    def test_single_iteration_when_no_writes(self, bed):
        precopier, dest_vbd, driver = make_precopier(bed)

        def proc(env):
            return (yield from precopier.run())

        iterations = bed.env.run(until=bed.env.process(proc(bed.env)))
        assert len(iterations) == 1
        assert iterations[0].units_sent == bed.vbd.nblocks
        assert iterations[0].dirty_at_end == 0
        assert dest_vbd.identical_to(bed.vbd)

    def test_tracking_left_registered(self, bed):
        precopier, _, driver = make_precopier(bed)

        def proc(env):
            return (yield from precopier.run())

        bed.env.run(until=bed.env.process(proc(bed.env)))
        # The precopy bitmap must keep tracking for the freeze phase.
        assert driver.tracking_bitmap(TRACKING_NAME) is not None


class TestDirtyDisk:
    def test_iterates_until_dirty_set_small(self, bed):
        bed.random_writer(region=(0, 200), interval=0.002)
        precopier, dest_vbd, driver = make_precopier(bed)

        def proc(env):
            return (yield from precopier.run())

        iterations = bed.env.run(until=bed.env.process(proc(bed.env)))
        assert len(iterations) >= 2
        assert iterations[0].units_sent == bed.vbd.nblocks
        # Later iterations shrink toward the threshold.
        assert iterations[-1].dirty_at_end <= max(
            bed.config.disk_dirty_threshold_blocks,
            iterations[-1].units_sent)

    def test_iteration_cap_respected(self, bed):
        bed.random_writer(region=(0, 1500), interval=0.0005, nblocks=8)
        cfg = bed.config.replace(max_disk_iterations=3,
                                 disk_dirty_threshold_blocks=1)
        precopier, _, _ = make_precopier(bed, config=cfg)

        def proc(env):
            return (yield from precopier.run())

        iterations = bed.env.run(until=bed.env.process(proc(bed.env)))
        assert len(iterations) <= 3

    def test_proactive_stop_when_dirty_rate_too_high(self, bed):
        # A writer dirtying far faster than the link can drain.
        bed.random_writer(region=(0, 1900), interval=0.0002, nblocks=16)
        cfg = bed.config.replace(max_disk_iterations=10,
                                 disk_dirty_threshold_blocks=1,
                                 dirty_rate_stop_fraction=0.5)
        precopier, _, _ = make_precopier(bed, config=cfg)

        def proc(env):
            return (yield from precopier.run())

        iterations = bed.env.run(until=bed.env.process(proc(bed.env)))
        assert len(iterations) < 10  # stopped proactively, not by the cap


class TestIncrementalFirstIteration:
    def test_initial_indices_bound_first_pass(self, bed):
        initial = np.array([3, 7, 11], dtype=np.int64)
        precopier, dest_vbd, _ = make_precopier(bed, initial=initial)

        def proc(env):
            return (yield from precopier.run())

        iterations = bed.env.run(until=bed.env.process(proc(bed.env)))
        assert iterations[0].units_sent == 3
        # Only those blocks were copied.
        assert dest_vbd.diff_blocks(bed.vbd).size == bed.vbd.nblocks - 3

    def test_empty_initial_set(self, bed):
        precopier, _, _ = make_precopier(
            bed, initial=np.empty(0, dtype=np.int64))

        def proc(env):
            return (yield from precopier.run())

        iterations = bed.env.run(until=bed.env.process(proc(bed.env)))
        assert iterations[0].units_sent == 0
