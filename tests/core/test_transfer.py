"""Unit tests for the pipelined block/page streamers."""

import numpy as np
import pytest

from repro.core import BlockStreamer, MigrationConfig, PageStreamer
from repro.net import Channel, Link
from repro.sim import Environment
from repro.storage import GenerationClock, PhysicalDisk, VirtualBlockDevice
from repro.units import MB, MiB
from repro.vm import GuestMemory


@pytest.fixture
def env():
    return Environment()


def make_disk_pair(env, nblocks=1000, data=False):
    clock = GenerationClock()
    src = VirtualBlockDevice(nblocks, clock=clock, data=data)
    dst = VirtualBlockDevice(nblocks, clock=clock, data=data)
    src_disk = PhysicalDisk(env, 100 * MiB, 100 * MiB, 0)
    dst_disk = PhysicalDisk(env, 100 * MiB, 100 * MiB, 0)
    return src, dst, src_disk, dst_disk, clock


class TestBlockStreamer:
    def test_transfers_all_blocks(self, env):
        src, dst, sd, dd, _ = make_disk_pair(env)
        src.write(0, 1000)
        chan = Channel(env, Link(env, 125 * MB, 0))
        streamer = BlockStreamer(env, sd, src, dd, dst, chan,
                                 MigrationConfig(chunk_blocks=100))

        def proc(env):
            return (yield from streamer.stream(np.arange(1000)))

        stats = env.run(until=env.process(proc(env)))
        assert stats.units_sent == 1000
        assert stats.bytes_sent > 1000 * 4096
        assert dst.identical_to(src)

    def test_empty_indices_is_noop(self, env):
        src, dst, sd, dd, _ = make_disk_pair(env)
        chan = Channel(env, Link(env, 125 * MB, 0))
        streamer = BlockStreamer(env, sd, src, dd, dst, chan,
                                 MigrationConfig())

        def proc(env):
            return (yield from streamer.stream(np.empty(0, dtype=np.int64)))

        stats = env.run(until=env.process(proc(env)))
        assert stats.units_sent == 0
        assert env.now == 0.0

    def test_rate_is_bottlenecked_not_summed(self, env):
        """Pipelining: total time ~ slowest stage, not the sum of stages."""
        src, dst, sd, dd, _ = make_disk_pair(env, nblocks=2560)
        nbytes = 2560 * 4096  # 10 MiB
        chan = Channel(env, Link(env, 100 * MiB, 0))
        streamer = BlockStreamer(env, sd, src, dd, dst, chan,
                                 MigrationConfig(chunk_blocks=256))

        def proc(env):
            yield from streamer.stream(np.arange(2560))
            return env.now

        elapsed = env.run(until=env.process(proc(env)))
        one_stage = nbytes / (100 * MiB)
        # Must be close to a single stage's time (pipelined), far below 3x.
        assert elapsed < 1.6 * one_stage

    def test_byte_mode_content_travels(self, env):
        src, dst, sd, dd, _ = make_disk_pair(env, nblocks=64, data=True)
        src.write(0, 64)
        chan = Channel(env, Link(env, 125 * MB, 0))
        streamer = BlockStreamer(env, sd, src, dd, dst, chan,
                                 MigrationConfig(chunk_blocks=16))

        def proc(env):
            yield from streamer.stream(np.arange(64))

        env.run(until=env.process(proc(env)))
        assert np.array_equal(dst.read_data(0, 64), src.read_data(0, 64))

    def test_subset_transfer(self, env):
        src, dst, sd, dd, _ = make_disk_pair(env)
        src.write(0, 1000)
        chan = Channel(env, Link(env, 125 * MB, 0))
        streamer = BlockStreamer(env, sd, src, dd, dst, chan,
                                 MigrationConfig(chunk_blocks=64))
        subset = np.array([1, 5, 500, 999])

        def proc(env):
            yield from streamer.stream(subset)

        env.run(until=env.process(proc(env)))
        assert dst.diff_blocks(src).size == 1000 - 4


class TestPageStreamer:
    def test_transfers_pages(self, env):
        clock = GenerationClock()
        src_mem = GuestMemory(256, clock=clock)
        dst_mem = GuestMemory(256, clock=clock)
        src_mem.touch(np.arange(256))
        chan = Channel(env, Link(env, 125 * MB, 0))
        streamer = PageStreamer(env, src_mem, dst_mem, chan,
                                MigrationConfig(mem_chunk_pages=64))

        def proc(env):
            return (yield from streamer.stream(np.arange(256)))

        stats = env.run(until=env.process(proc(env)))
        assert stats.units_sent == 256
        assert dst_mem.identical_to(src_mem)

    def test_no_destination_memory_allowed(self, env):
        src_mem = GuestMemory(64)
        chan = Channel(env, Link(env, 125 * MB, 0))
        streamer = PageStreamer(env, src_mem, None, chan, MigrationConfig())

        def proc(env):
            return (yield from streamer.stream(np.arange(64)))

        stats = env.run(until=env.process(proc(env)))
        assert stats.units_sent == 64

    def test_empty_pages_noop(self, env):
        src_mem = GuestMemory(64)
        chan = Channel(env, Link(env, 125 * MB, 0))
        streamer = PageStreamer(env, src_mem, None, chan, MigrationConfig())

        def proc(env):
            return (yield from streamer.stream(np.empty(0, dtype=np.int64)))

        stats = env.run(until=env.process(proc(env)))
        assert stats.units_sent == 0


class TestSplitChunks:
    def test_zero_length_payload_yields_no_chunks(self):
        from repro.core.transfer import split_chunks

        assert split_chunks(np.empty(0, dtype=np.int64), 128) == []

    def test_chunk_size_larger_than_payload(self):
        from repro.core.transfer import split_chunks

        indices = np.arange(10)
        chunks = split_chunks(indices, 1000)
        assert len(chunks) == 1
        np.testing.assert_array_equal(chunks[0], indices)

    def test_non_divisible_tail_matches_array_split(self):
        from repro.core.transfer import split_chunks

        for n, size in [(10, 3), (1000, 128), (7, 7), (8, 7), (1, 4),
                        (129, 128), (255, 128)]:
            indices = np.arange(n)
            nchunks = (n + size - 1) // size
            expected = np.array_split(indices, nchunks)
            got = split_chunks(indices, size)
            assert len(got) == len(expected)
            for mine, ref in zip(got, expected):
                np.testing.assert_array_equal(mine, ref)
            # Every element appears exactly once, in order.
            np.testing.assert_array_equal(np.concatenate(got), indices)
            # No chunk exceeds the requested size.
            assert max(len(c) for c in got) <= size

    def test_chunks_are_views_not_copies(self):
        from repro.core.transfer import split_chunks

        indices = np.arange(16)
        for chunk in split_chunks(indices, 4):
            assert chunk.base is indices


class TestStriping:
    """Streamer-level multifd behaviour (pipeline_depth interaction)."""

    def _stream(self, env, nblocks, *, multifd_channels, pipeline_depth):
        from repro.net import MultiFD

        src, dst, sd, dd, _ = make_disk_pair(env, nblocks=nblocks)
        src.write(0, nblocks)
        chan = Channel(env, Link(env, 125 * MB, 0))
        mfd = (MultiFD(env, chan, multifd_channels)
               if multifd_channels > 1 else None)
        cfg = MigrationConfig(chunk_blocks=64, pipeline_depth=pipeline_depth,
                              multifd_channels=multifd_channels)
        streamer = BlockStreamer(env, sd, src, dd, dst, chan, cfg,
                                 multifd=mfd)

        def proc(env):
            return (yield from streamer.stream(np.arange(nblocks)))

        stats = env.run(until=env.process(proc(env)))
        assert dst.identical_to(src)
        return stats, mfd

    @pytest.mark.parametrize("depth", [1, 2, 8])
    @pytest.mark.parametrize("nchannels", [2, 4])
    def test_pipeline_depth_times_multifd(self, depth, nchannels):
        """Every depth x fan-out combination moves all blocks and spreads
        traffic across every lane (each buffer is depth-bounded, so a slow
        lane backpressures the shared reader without deadlock)."""
        env = Environment()
        stats, mfd = self._stream(env, 1000, multifd_channels=nchannels,
                                  pipeline_depth=depth)
        assert stats.units_sent == 1000
        assert all(chan.total_bytes > 0 for chan in mfd.channels)
        assert mfd.total_bytes == stats.bytes_sent

    def test_striped_byte_total_matches_single_channel(self):
        baseline, _ = self._stream(Environment(), 1000, multifd_channels=1,
                                   pipeline_depth=4)
        striped, _ = self._stream(Environment(), 1000, multifd_channels=4,
                                  pipeline_depth=4)
        assert striped.bytes_sent == baseline.bytes_sent
        assert striped.units_sent == baseline.units_sent

    def test_single_chunk_batch_skips_striping(self):
        """A batch that fits one chunk rides the base channel even when a
        MultiFD is attached (striping one chunk would only add overhead)."""
        env = Environment()
        from repro.net import MultiFD

        src, dst, sd, dd, _ = make_disk_pair(env, nblocks=32)
        src.write(0, 32)
        chan = Channel(env, Link(env, 125 * MB, 0))
        mfd = MultiFD(env, chan, 4)
        streamer = BlockStreamer(env, sd, src, dd, dst, chan,
                                 MigrationConfig(chunk_blocks=64),
                                 multifd=mfd)

        def proc(env):
            return (yield from streamer.stream(np.arange(32)))

        stats = env.run(until=env.process(proc(env)))
        assert stats.units_sent == 32
        assert mfd.total_bytes == 0
        assert chan.total_bytes == stats.bytes_sent
