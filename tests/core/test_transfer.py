"""Unit tests for the pipelined block/page streamers."""

import numpy as np
import pytest

from repro.core import BlockStreamer, MigrationConfig, PageStreamer
from repro.net import Channel, Link
from repro.sim import Environment
from repro.storage import GenerationClock, PhysicalDisk, VirtualBlockDevice
from repro.units import MB, MiB
from repro.vm import GuestMemory


@pytest.fixture
def env():
    return Environment()


def make_disk_pair(env, nblocks=1000, data=False):
    clock = GenerationClock()
    src = VirtualBlockDevice(nblocks, clock=clock, data=data)
    dst = VirtualBlockDevice(nblocks, clock=clock, data=data)
    src_disk = PhysicalDisk(env, 100 * MiB, 100 * MiB, 0)
    dst_disk = PhysicalDisk(env, 100 * MiB, 100 * MiB, 0)
    return src, dst, src_disk, dst_disk, clock


class TestBlockStreamer:
    def test_transfers_all_blocks(self, env):
        src, dst, sd, dd, _ = make_disk_pair(env)
        src.write(0, 1000)
        chan = Channel(env, Link(env, 125 * MB, 0))
        streamer = BlockStreamer(env, sd, src, dd, dst, chan,
                                 MigrationConfig(chunk_blocks=100))

        def proc(env):
            return (yield from streamer.stream(np.arange(1000)))

        stats = env.run(until=env.process(proc(env)))
        assert stats.units_sent == 1000
        assert stats.bytes_sent > 1000 * 4096
        assert dst.identical_to(src)

    def test_empty_indices_is_noop(self, env):
        src, dst, sd, dd, _ = make_disk_pair(env)
        chan = Channel(env, Link(env, 125 * MB, 0))
        streamer = BlockStreamer(env, sd, src, dd, dst, chan,
                                 MigrationConfig())

        def proc(env):
            return (yield from streamer.stream(np.empty(0, dtype=np.int64)))

        stats = env.run(until=env.process(proc(env)))
        assert stats.units_sent == 0
        assert env.now == 0.0

    def test_rate_is_bottlenecked_not_summed(self, env):
        """Pipelining: total time ~ slowest stage, not the sum of stages."""
        src, dst, sd, dd, _ = make_disk_pair(env, nblocks=2560)
        nbytes = 2560 * 4096  # 10 MiB
        chan = Channel(env, Link(env, 100 * MiB, 0))
        streamer = BlockStreamer(env, sd, src, dd, dst, chan,
                                 MigrationConfig(chunk_blocks=256))

        def proc(env):
            yield from streamer.stream(np.arange(2560))
            return env.now

        elapsed = env.run(until=env.process(proc(env)))
        one_stage = nbytes / (100 * MiB)
        # Must be close to a single stage's time (pipelined), far below 3x.
        assert elapsed < 1.6 * one_stage

    def test_byte_mode_content_travels(self, env):
        src, dst, sd, dd, _ = make_disk_pair(env, nblocks=64, data=True)
        src.write(0, 64)
        chan = Channel(env, Link(env, 125 * MB, 0))
        streamer = BlockStreamer(env, sd, src, dd, dst, chan,
                                 MigrationConfig(chunk_blocks=16))

        def proc(env):
            yield from streamer.stream(np.arange(64))

        env.run(until=env.process(proc(env)))
        assert np.array_equal(dst.read_data(0, 64), src.read_data(0, 64))

    def test_subset_transfer(self, env):
        src, dst, sd, dd, _ = make_disk_pair(env)
        src.write(0, 1000)
        chan = Channel(env, Link(env, 125 * MB, 0))
        streamer = BlockStreamer(env, sd, src, dd, dst, chan,
                                 MigrationConfig(chunk_blocks=64))
        subset = np.array([1, 5, 500, 999])

        def proc(env):
            yield from streamer.stream(subset)

        env.run(until=env.process(proc(env)))
        assert dst.diff_blocks(src).size == 1000 - 4


class TestPageStreamer:
    def test_transfers_pages(self, env):
        clock = GenerationClock()
        src_mem = GuestMemory(256, clock=clock)
        dst_mem = GuestMemory(256, clock=clock)
        src_mem.touch(np.arange(256))
        chan = Channel(env, Link(env, 125 * MB, 0))
        streamer = PageStreamer(env, src_mem, dst_mem, chan,
                                MigrationConfig(mem_chunk_pages=64))

        def proc(env):
            return (yield from streamer.stream(np.arange(256)))

        stats = env.run(until=env.process(proc(env)))
        assert stats.units_sent == 256
        assert dst_mem.identical_to(src_mem)

    def test_no_destination_memory_allowed(self, env):
        src_mem = GuestMemory(64)
        chan = Channel(env, Link(env, 125 * MB, 0))
        streamer = PageStreamer(env, src_mem, None, chan, MigrationConfig())

        def proc(env):
            return (yield from streamer.stream(np.arange(64)))

        stats = env.run(until=env.process(proc(env)))
        assert stats.units_sent == 64

    def test_empty_pages_noop(self, env):
        src_mem = GuestMemory(64)
        chan = Channel(env, Link(env, 125 * MB, 0))
        streamer = PageStreamer(env, src_mem, None, chan, MigrationConfig())

        def proc(env):
            return (yield from streamer.stream(np.empty(0, dtype=np.int64)))

        stats = env.run(until=env.process(proc(env)))
        assert stats.units_sent == 0
