"""Tests for the auto-converge write-throttle controller."""

import pytest

from repro.core import AutoConvergeController, MigrationConfig
from repro.core.metrics import IterationStats
from repro.sim import Environment
from repro.units import MB
from repro.vm import Domain, GuestMemory


def record(units_sent=100, dirty_at_end=0, duration=1.0):
    """An IterationStats with a chosen dirty/transfer rate ratio."""
    return IterationStats(index=1, units_sent=units_sent,
                          bytes_sent=units_sent * 4096, started_at=0.0,
                          ended_at=duration, dirty_at_end=dirty_at_end)


@pytest.fixture
def env():
    return Environment()


@pytest.fixture
def domain(env):
    return Domain(env, GuestMemory(16))


def make_controller(env, domain, **over):
    cfg = MigrationConfig(auto_converge=True, **over)
    return AutoConvergeController(env, domain, cfg)


class TestAutoConvergeController:
    def test_no_escalation_while_converging(self, env, domain):
        ctrl = make_controller(env, domain)
        # Dirty rate well under the stop fraction of the transfer rate.
        assert ctrl.observe(record(units_sent=100, dirty_at_end=10)) is False
        assert ctrl.factor == 1.0
        assert domain.write_throttle == 1.0
        assert ctrl.steps == []

    def test_zero_duration_iteration_is_ignored(self, env, domain):
        ctrl = make_controller(env, domain)
        assert ctrl.observe(record(dirty_at_end=500, duration=0.0)) is False
        assert ctrl.factor == 1.0

    def test_escalation_sequence_start_step_cap(self, env, domain):
        ctrl = make_controller(env, domain, auto_converge_start=2.0,
                               auto_converge_step=2.0,
                               auto_converge_max_factor=7.0)
        diabolical = record(units_sent=100, dirty_at_end=200)
        factors = []
        while ctrl.observe(diabolical):
            factors.append(ctrl.factor)
            assert domain.write_throttle == ctrl.factor
        assert factors == [2.0, 4.0, 6.0, 7.0]
        assert ctrl.maxed
        # Once capped, further diabolical iterations do not escalate.
        assert ctrl.observe(diabolical) is False
        assert len(ctrl.steps) == 4

    def test_release_resets_throttle(self, env, domain):
        ctrl = make_controller(env, domain)
        ctrl.observe(record(units_sent=100, dirty_at_end=200))
        assert domain.write_throttle > 1.0
        ctrl.release()
        assert domain.write_throttle == 1.0
        # Idempotent, and the step log survives for the report.
        ctrl.release()
        assert len(ctrl.steps) == 1

    def test_summary_shape(self, env, domain):
        ctrl = make_controller(env, domain)
        ctrl.observe(record(units_sent=100, dirty_at_end=200))
        doc = ctrl.summary()
        assert doc["steps"] == 1
        assert doc["final_factor"] == ctrl.factor
        assert doc["log"] == [[0.0, ctrl.factor]]


class TestThrottledDomain:
    def test_write_stretched_by_factor(self, make_bed):
        """A throttled write takes ~factor x the unthrottled duration."""
        bed = make_bed()

        def timed_write(env):
            started = env.now
            yield from bed.domain.write(0, 8)
            return env.now - started

        plain = bed.env.run(until=bed.env.process(timed_write(bed.env)))
        bed.domain.write_throttle = 4.0
        slow = bed.env.run(until=bed.env.process(timed_write(bed.env)))
        assert slow == pytest.approx(4.0 * plain)
        # Reads are never throttled.
        def timed_read(env):
            started = env.now
            yield from bed.domain.read(0, 8)
            return env.now - started

        bed.domain.write_throttle = 1.0
        fast_read = bed.env.run(until=bed.env.process(timed_read(bed.env)))
        bed.domain.write_throttle = 4.0
        slow_read = bed.env.run(until=bed.env.process(timed_read(bed.env)))
        assert slow_read == pytest.approx(fast_read)


def diabolical_bed(make_bed):
    """A writer that re-dirties 90% of the disk faster than a 10 MB/s link
    can drain it: pre-copy can never converge without intervention."""
    bed = make_bed(link_bw=10 * MB)
    bed.random_writer(region=(0, 1800), interval=0.0, nblocks=4)
    return bed


class TestAutoConvergeMigration:
    def test_diabolical_workload_does_not_converge_without_knob(
            self, make_bed):
        bed = diabolical_bed(make_bed)
        report = bed.migrate()
        last = report.disk_iterations[-1]
        # Proactive stop fired with nearly the whole region still dirty.
        assert last.dirty_at_end > bed.config.disk_dirty_threshold_blocks
        assert "auto_converge_steps" not in report.extra

    def test_diabolical_workload_converges_with_auto_converge(
            self, make_bed):
        bed = diabolical_bed(make_bed)
        cfg = bed.config.replace(auto_converge=True)
        report = bed.migrate(cfg)
        assert report.consistency_verified
        last = report.disk_iterations[-1]
        # Converged: the final pre-copy round got under the threshold.
        assert last.dirty_at_end <= cfg.disk_dirty_threshold_blocks
        # ...in bounded rounds, with the escalation recorded.
        assert len(report.disk_iterations) <= cfg.auto_converge_max_iterations
        assert report.extra["auto_converge_steps"] >= 1
        assert report.extra["auto_converge_final_factor"] > 1.0
        log = report.extra["auto_converge_log"]
        assert len(log) == report.extra["auto_converge_steps"]
        # Throttle released at freeze: the guest resumes unthrottled.
        assert bed.domain.write_throttle == 1.0

    def test_throttle_released_on_abort(self, make_bed):
        bed = diabolical_bed(make_bed)
        throttled_at_abort = []

        def aborter(env):
            # A couple of iterations in, the controller has escalated.
            yield env.timeout(2.0)
            throttled_at_abort.append(bed.domain.write_throttle)
            assert bed.migrator.abort(bed.domain)

        bed.env.process(aborter(bed.env))
        report = bed.migrate(bed.config.replace(auto_converge=True))
        assert report.extra["aborted"] is True
        assert throttled_at_abort[0] > 1.0
        assert bed.domain.write_throttle == 1.0
