"""Unit tests for the post-copy push-and-pull synchronizer.

These exercise the paper's two §IV-A-3 algorithms path by path: pure push,
pull-on-read, write-cancels-transfer, the drop rule for superseded pushes,
and the pending-request queue.
"""

import numpy as np
import pytest

from repro.bitmap import FlatBitmap
from repro.core import MigrationConfig, PostCopySynchronizer
from repro.errors import MigrationError


def make_postcopy(bed, dirty_blocks, config=None):
    """Fabricate the state right after freeze-and-copy: domain on the
    destination, all blocks synced except ``dirty_blocks`` (newer on the
    source), both bitmaps marking exactly those."""
    env = bed.env
    nblocks = bed.vbd.nblocks
    src_vbd = bed.vbd
    dest_vbd = bed.destination.prepare_vbd(nblocks)

    all_idx = np.arange(nblocks, dtype=np.int64)
    stamps, data = src_vbd.export_blocks(all_idx)
    dest_vbd.import_blocks(all_idx, stamps, data)
    dirty = np.asarray(dirty_blocks, dtype=np.int64)
    for b in dirty:
        src_vbd.write(int(b))  # source copy is now newer

    dom_id = bed.domain.domain_id
    bed.source.detach_domain(dom_id)
    driver = bed.destination.attach_domain(bed.domain, dest_vbd)
    driver.start_tracking("im", FlatBitmap(nblocks))

    bm1 = FlatBitmap(nblocks)
    bm1.set_many(dirty)
    bm2 = bm1.copy()
    fwd, rev = bed.channels("postcopy")
    cfg = config if config is not None else bed.config
    sync = PostCopySynchronizer(
        env, bed.source.disk, src_vbd, bed.destination.disk, dest_vbd,
        driver, fwd, rev, source_bitmap=bm1, transferred_bitmap=bm2,
        config=cfg)
    driver.interceptor = sync.intercept
    return sync, dest_vbd, driver


def run_sync(bed, sync):
    def proc(env):
        return (yield from sync.run())

    return bed.env.run(until=bed.env.process(proc(bed.env)))


class TestPushOnly:
    def test_all_blocks_pushed_and_consistent(self, bed):
        dirty = [5, 17, 100, 1999]
        sync, dest_vbd, _ = make_postcopy(bed, dirty)
        stats = run_sync(bed, sync)
        assert stats.pushed_blocks == 4
        assert stats.pulled_blocks == 0
        assert stats.dropped_blocks == 0
        assert dest_vbd.identical_to(bed.vbd)
        assert sync.transferred_bitmap.count() == 0

    def test_empty_dirty_set_finishes_immediately(self, bed):
        sync, dest_vbd, _ = make_postcopy(bed, [])
        stats = run_sync(bed, sync)
        assert stats.pushed_blocks == 0
        assert dest_vbd.identical_to(bed.vbd)

    def test_interceptor_uninstalled_after_run(self, bed):
        sync, _, driver = make_postcopy(bed, [1])
        run_sync(bed, sync)
        assert driver.interceptor is None

    def test_finite_duration(self, bed):
        sync, _, _ = make_postcopy(bed, list(range(0, 500)))
        stats = run_sync(bed, sync)
        assert stats.duration < 10.0  # finite dependency on the source


class TestPullOnRead:
    def test_read_of_dirty_block_pulls(self, bed):
        # Make the dirty list long so pushes take a while; read the LAST
        # block in push order immediately -> must be pulled.
        dirty = list(range(0, 400))
        sync, dest_vbd, _ = make_postcopy(bed, dirty)
        outcome = {}

        def guest(env):
            yield from bed.domain.read(399)
            outcome["read_done_at"] = env.now

        bed.env.process(guest(bed.env))
        stats = run_sync(bed, sync)
        assert stats.pulled_blocks >= 1
        assert stats.stalled_reads >= 1
        assert stats.stall_time > 0
        assert outcome["read_done_at"] < stats.ended_at  # served early
        assert dest_vbd.identical_to(bed.vbd)

    def test_read_of_clean_block_never_stalls(self, bed):
        sync, _, _ = make_postcopy(bed, [100])
        done = {}

        def guest(env):
            yield from bed.domain.read(5)  # clean block
            done["at"] = env.now

        bed.env.process(guest(bed.env))
        stats = run_sync(bed, sync)
        assert stats.stalled_reads == 0
        assert stats.pulled_blocks == 0

    def test_duplicate_reads_send_one_pull(self, bed):
        dirty = list(range(0, 400))
        sync, _, _ = make_postcopy(bed, dirty)

        def guest(env):
            yield from bed.domain.read(399)

        def guest2(env):
            yield from bed.domain.read(399)

        bed.env.process(guest(bed.env))
        bed.env.process(guest2(bed.env))
        stats = run_sync(bed, sync)
        # The block crossed the wire as a pull only once (a second copy may
        # arrive as the ordinary push and be dropped).
        assert stats.pulled_blocks <= 1


class TestWriteCancelsTransfer:
    def test_write_clears_bit_and_push_is_dropped(self, bed):
        dirty = list(range(0, 300))
        sync, dest_vbd, driver = make_postcopy(bed, dirty)

        def guest(env):
            # Overwrite the LAST dirty block before its push arrives.
            yield from bed.domain.write(299)

        bed.env.process(guest(bed.env))
        stats = run_sync(bed, sync)
        assert stats.dropped_blocks >= 1
        # Destination holds the guest's newer write, not the source copy.
        diff = bed.vbd.diff_blocks(dest_vbd)
        assert 299 in diff.tolist()
        # ... and that divergence is exactly what the IM bitmap records.
        im = driver.tracking_bitmap("im")
        assert im.test(299)
        assert set(diff.tolist()) <= set(im.dirty_indices().tolist())

    def test_write_to_clean_block_tracked_for_im(self, bed):
        sync, _, driver = make_postcopy(bed, [100])

        def guest(env):
            yield from bed.domain.write(5)

        bed.env.process(guest(bed.env))
        run_sync(bed, sync)
        assert driver.tracking_bitmap("im").test(5)

    def test_write_wakes_pending_read(self, bed):
        """Documented deviation: a write to a block a read is waiting on
        releases that read instead of leaving it pending forever."""
        dirty = list(range(0, 300))
        sync, _, _ = make_postcopy(bed, dirty)
        done = {}

        def reader(env):
            yield from bed.domain.read(299)
            done["read"] = env.now

        def writer(env):
            yield env.timeout(0.0001)
            yield from bed.domain.write(299)
            done["write"] = env.now

        bed.env.process(reader(bed.env))
        bed.env.process(writer(bed.env))
        stats = run_sync(bed, sync)
        assert "read" in done  # liveness
        assert done["read"] >= done["write"]


class TestPullOnlyMode:
    """Ablation: post-copy without the push stream (pure on-demand pull)."""

    def test_completes_only_after_guest_touches_everything(self, bed):
        dirty = [1, 2, 3, 4]
        cfg = bed.config.replace(postcopy_push=False)
        sync, dest_vbd, _ = make_postcopy(bed, dirty, config=cfg)

        def guest(env):
            yield env.timeout(0.05)
            for b in dirty:
                yield from bed.domain.read(b)

        bed.env.process(guest(bed.env))
        stats = run_sync(bed, sync)
        assert stats.pulled_blocks == len(dirty)
        assert stats.pushed_blocks == 0
        assert stats.ended_at >= 0.05  # waited for the guest, not the push
        assert dest_vbd.identical_to(bed.vbd)

    def test_guest_writes_also_converge_it(self, bed):
        dirty = [10, 11]
        cfg = bed.config.replace(postcopy_push=False)
        sync, dest_vbd, driver = make_postcopy(bed, dirty, config=cfg)

        def guest(env):
            yield from bed.domain.write(10)
            yield from bed.domain.read(11)

        bed.env.process(guest(bed.env))
        stats = run_sync(bed, sync)
        assert stats.pulled_blocks == 1
        assert sync.transferred_bitmap.count() == 0

    def test_empty_dirty_set_trivially_done(self, bed):
        cfg = bed.config.replace(postcopy_push=False)
        sync, _, _ = make_postcopy(bed, [], config=cfg)
        stats = run_sync(bed, sync)
        assert stats.pulled_blocks == 0


class TestCompletion:
    def test_synchronized_time_recorded(self, bed):
        sync, _, _ = make_postcopy(bed, [1, 2, 3])
        stats = run_sync(bed, sync)
        assert stats.started_at <= stats.ended_at
        assert sync._synchronized_at is not None

    def test_source_bitmap_drained(self, bed):
        sync, _, _ = make_postcopy(bed, [7, 8])
        run_sync(bed, sync)
        assert sync.source_bitmap.count() == 0
