"""Scheme registry, cross-scheme report parity, and shared-link runs.

These are the refactor's acceptance tests: every migration scheme —
paper mechanism and baselines alike — runs through the one
``Migrator.migrate`` code path, produces a report with the same schema,
lands in ``Migrator.history``, and concurrent migrations sharing a link
keep per-link byte accounting conserved.
"""

import pytest

from repro.cluster import assert_conserved
from repro.core import Migrator, get_scheme, scheme_names
from repro.core.scheme import MigrationScheme
from repro.core.tpm import ThreePhaseMigration
from repro.errors import MigrationError, MigrationFailed, ReproError
from repro.sim import Environment
from repro.vm import Domain, GuestMemory

# The five registered schemes, spelled out so a grep of the test tree
# proves each one is exercised (tools/check_scheme_coverage.py).
ALL_SCHEMES = (
    "delta-queue",
    "freeze-and-copy",
    "on-demand",
    "shared-storage",
    "tpm",
)


class TestRegistry:
    def test_registry_matches_expected_schemes(self):
        assert scheme_names() == ALL_SCHEMES

    def test_aliases_resolve_to_canonical_class(self):
        assert get_scheme("delta") is get_scheme("delta-queue")
        assert get_scheme("freeze-copy") is get_scheme("freeze-and-copy")
        assert get_scheme("ondemand") is get_scheme("on-demand")
        assert get_scheme("shared") is get_scheme("shared-storage")

    def test_tpm_is_the_paper_mechanism(self):
        assert get_scheme("tpm") is ThreePhaseMigration
        assert ThreePhaseMigration.uses_im
        assert ThreePhaseMigration.supports_abort

    def test_unknown_scheme_raises(self):
        with pytest.raises(ReproError):
            get_scheme("teleport")

    def test_every_scheme_subclasses_base(self):
        for name in ALL_SCHEMES:
            cls = get_scheme(name)
            assert issubclass(cls, MigrationScheme)
            assert cls.name == name


class TestConnectDedup:
    """Regression: reconnecting a pair must not replace the live link."""

    def test_reconnect_returns_same_link(self, bed):
        duplex = bed.migrator.topology.duplex_between(bed.source,
                                                      bed.destination)
        again = bed.migrator.connect(bed.source, bed.destination,
                                     bandwidth=duplex.forward.bandwidth,
                                     latency=duplex.forward.latency)
        assert again is duplex

    def test_reconnect_conflict_raises(self, bed):
        duplex = bed.migrator.topology.duplex_between(bed.source,
                                                      bed.destination)
        with pytest.raises(MigrationError):
            bed.migrator.connect(bed.source, bed.destination,
                                 bandwidth=duplex.forward.bandwidth * 2,
                                 latency=duplex.forward.latency)
        # The original link is untouched.
        assert bed.migrator.topology.duplex_between(
            bed.source, bed.destination) is duplex


class TestCrashedHostReport:
    """Regression: the early-failure report must carry the *requested*
    scheme, not a hardcoded "tpm"."""

    @pytest.mark.parametrize("scheme,canonical", [
        ("freeze-and-copy", "freeze-and-copy"),
        ("delta", "delta-queue"),
    ])
    def test_report_stamps_selected_scheme(self, bed, scheme, canonical):
        bed.destination.crashed = True
        proc = bed.migrator.migrate_process(bed.domain, bed.destination,
                                            scheme=scheme)
        with pytest.raises(MigrationFailed):
            bed.env.run(until=proc)
        report = bed.migrator.history[-1]
        assert report.scheme == canonical
        assert report.extra["failed"] is True


class TestSchemeParity:
    """All five schemes run through one Migrator entry point and emit
    reports with the same schema."""

    @pytest.mark.parametrize("scheme", ALL_SCHEMES)
    def test_scheme_completes_with_uniform_report(self, make_bed, scheme):
        bed = make_bed(nblocks=512, npages=128)
        proc = bed.migrator.migrate_process(
            bed.domain, bed.destination, workload_name="idle",
            scheme=scheme)
        report = bed.env.run(until=proc)

        # Same schema for every scheme.
        assert report.scheme == scheme
        assert report.workload == "idle"
        assert report.ended_at > report.started_at
        assert report.total_migration_time > 0
        assert report.downtime >= 0
        assert isinstance(report.bytes_by_category, dict)
        assert not report.extra.get("failed")

        # One history, one migration object list, for every scheme.
        assert bed.migrator.history[-1] is report
        migration = bed.migrator.migrations[-1]
        assert migration is bed.migrator.last_migration
        assert migration.report is report
        assert type(migration) is get_scheme(scheme)

        # The domain actually moved (shared storage migrates only the
        # execution host; either way the VM must end up running on the
        # destination).
        assert bed.domain.host is bed.destination
        assert bed.domain.running

    @pytest.mark.parametrize("scheme", ALL_SCHEMES)
    def test_scheme_moves_bytes_and_conserves_them(self, make_bed, scheme):
        bed = make_bed(nblocks=512, npages=128)
        proc = bed.migrator.migrate_process(bed.domain, bed.destination,
                                            scheme=scheme)
        bed.env.run(until=proc)
        assert_conserved(bed.migrator.migrations)
        if scheme != "shared-storage":  # shared storage ships no disk
            total = sum(
                bed.migrator.history[-1].bytes_by_category.values())
            assert total > 0


class TestConcurrentSharedLink:
    """Two domains migrating over one physical link at the same time."""

    def _second_domain(self, bed, nblocks=512, npages=128):
        vbd = bed.source.prepare_vbd(nblocks)
        vbd.write(0, nblocks)
        domain = Domain(bed.env, GuestMemory(npages, clock=bed.clock),
                        name="vm2")
        bed.source.attach_domain(domain, vbd)
        return domain

    def test_both_complete_and_bytes_conserved(self, make_bed):
        bed = make_bed(nblocks=512, npages=128)
        other = self._second_domain(bed)
        p1 = bed.migrator.migrate_process(bed.domain, bed.destination)
        p2 = bed.migrator.migrate_process(other, bed.destination)
        bed.env.run(until=bed.env.all_of([p1, p2]))

        assert bed.domain.host is bed.destination and bed.domain.running
        assert other.host is bed.destination and other.running
        assert not bed.source.domains

        # Reports are independent: one per domain, distinct objects,
        # both complete.
        reports = bed.migrator.history
        assert len(reports) == 2
        assert reports[0] is not reports[1]
        assert {r.workload for r in reports} == {"unknown"}
        for report in reports:
            assert not report.extra.get("failed")
            assert report.downtime > 0
            assert sum(report.bytes_by_category.values()) > 0

        # Conservation: the link's wire counter equals the sum of both
        # migrations' channel ledgers.
        assert len(bed.migrator.migrations) == 2
        assert_conserved(bed.migrator.migrations)
        fwd_link, _ = bed.migrator.link_between(bed.source, bed.destination)
        ledger_total = sum(
            chan.total_bytes
            for migration in bed.migrator.migrations
            for chan in migration.channels
            if chan.link is fwd_link)
        assert fwd_link.bytes_sent == ledger_total

    def test_contention_slows_both_versus_solo(self, make_bed):
        solo = make_bed(nblocks=512, npages=128)
        proc = solo.migrator.migrate_process(solo.domain, solo.destination)
        solo_report = solo.env.run(until=proc)

        bed = make_bed(nblocks=512, npages=128)
        other = self._second_domain(bed)
        p1 = bed.migrator.migrate_process(bed.domain, bed.destination)
        p2 = bed.migrator.migrate_process(other, bed.destination)
        bed.env.run(until=bed.env.all_of([p1, p2]))
        for report in bed.migrator.history:
            assert (report.total_migration_time
                    > solo_report.total_migration_time)

    def test_mixed_schemes_share_a_link(self, make_bed):
        bed = make_bed(nblocks=512, npages=128)
        other = self._second_domain(bed)
        p1 = bed.migrator.migrate_process(bed.domain, bed.destination,
                                          scheme="tpm")
        p2 = bed.migrator.migrate_process(other, bed.destination,
                                          scheme="freeze-and-copy")
        bed.env.run(until=bed.env.all_of([p1, p2]))
        assert bed.domain.host is bed.destination
        assert other.host is bed.destination
        assert {r.scheme for r in bed.migrator.history} == {
            "tpm", "freeze-and-copy"}
        assert_conserved(bed.migrator.migrations)
