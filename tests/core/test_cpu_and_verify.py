"""Regression tests for two freeze-and-copy bugs.

1. CPU state must be captured on the *source* before the domain moves and
   restored on the destination — a self-round-trip after detach/attach
   silently resumed from whatever the in-memory object held at that point.
2. The consistency-verification wait is a configurable budget, and a
   budget overrun must name the offending blocks and the time spent.
"""

import numpy as np
import pytest

from repro.core.tpm import ThreePhaseMigration
from repro.errors import MigrationError


class TestCPUStateTransfer:
    def test_cpu_context_survives_host_side_corruption(self, bed):
        """The destination resumes from the snapshot shipped at freeze,
        not from whatever the CPU object holds after detach."""
        bed.domain.cpu.context["pc"] = 0x1234
        original_detach = bed.source.detach_domain

        def corrupting_detach(domain_id):
            result = original_detach(domain_id)
            # Host-side teardown scribbles on the live CPU object between
            # detach and attach; the shipped snapshot must win.
            bed.domain.cpu.context["pc"] = 0xDEAD
            return result

        bed.source.detach_domain = corrupting_detach
        report = bed.migrate()
        assert report.consistency_verified
        assert bed.domain.host is bed.destination
        assert bed.domain.cpu.context["pc"] == 0x1234

    def test_cpu_version_bumped_exactly_once(self, bed):
        before = bed.domain.cpu.version
        bed.migrate()
        # One capture (at freeze, when the CPUStateMsg ships) and the
        # restore adopts that snapshot's version.
        assert bed.domain.cpu.version == before + 1

    def test_writes_after_capture_would_be_lost_loudly(self, bed):
        """Sanity: mutating after the freeze capture does NOT survive —
        the snapshot semantics are capture-at-freeze, not capture-latest."""
        bed.domain.cpu.context["pc"] = 1

        def mutate_late(domain_id):
            result = original(domain_id)
            bed.domain.cpu.context["scratch"] = True
            return result

        original = bed.source.detach_domain
        bed.source.detach_domain = mutate_late
        bed.migrate()
        assert "scratch" not in bed.domain.cpu.context


class TestVerifyBudget:
    def run_failing_verify(self, bed, monkeypatch, diff, budget=0.05,
                           interval=0.01):
        monkeypatch.setattr(
            ThreePhaseMigration, "_unexplained_diff",
            lambda self, *args: np.asarray(diff, dtype=np.int64))
        cfg = bed.config.replace(verify_retry_budget=budget,
                                 verify_retry_interval=interval)
        proc = bed.migrator.migrate_process(bed.domain, bed.destination, cfg)
        with pytest.raises(MigrationError) as excinfo:
            bed.env.run(until=proc)
        return str(excinfo.value)

    def test_budget_overrun_names_blocks_and_wait(self, bed, monkeypatch):
        message = self.run_failing_verify(bed, monkeypatch, [7, 9])
        assert "2 blocks" in message
        assert "[7, 9]" in message
        assert "waited 0.050" in message

    def test_long_block_list_is_truncated(self, bed, monkeypatch):
        message = self.run_failing_verify(bed, monkeypatch, list(range(20)))
        assert "20 blocks" in message
        assert ", ..." in message
        assert "19" not in message.split("offending")[1]

    def test_zero_budget_fails_on_first_check(self, bed, monkeypatch):
        message = self.run_failing_verify(bed, monkeypatch, [3], budget=0.0)
        assert "waited 0.000" in message

    def test_transient_diff_resolves_within_budget(self, bed, monkeypatch):
        """A diff that clears while waiting must not raise."""
        calls = {"n": 0}
        real = ThreePhaseMigration._unexplained_diff

        def flaky(self, *args):
            calls["n"] += 1
            if calls["n"] < 3:
                return np.array([42], dtype=np.int64)
            return real(self, *args)

        monkeypatch.setattr(ThreePhaseMigration, "_unexplained_diff", flaky)
        cfg = bed.config.replace(verify_retry_budget=0.5,
                                 verify_retry_interval=0.01)
        proc = bed.migrator.migrate_process(bed.domain, bed.destination, cfg)
        report = bed.env.run(until=proc)
        assert report.consistency_verified
        assert calls["n"] >= 3
