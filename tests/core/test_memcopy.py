"""Unit tests for the iterative memory pre-copier."""

import numpy as np
import pytest

from repro.core import MemoryPreCopier, MigrationConfig, PageStreamer
from repro.net import Channel, Link
from repro.sim import Environment
from repro.storage import GenerationClock
from repro.units import MB
from repro.vm import GuestMemory


@pytest.fixture
def env():
    return Environment()


def run_memcopy(env, npages=512, dirty_proc=None, config=None):
    clock = GenerationClock()
    src = GuestMemory(npages, clock=clock)
    dst = GuestMemory(npages, clock=clock)
    src.touch(np.arange(npages))
    chan = Channel(env, Link(env, 125 * MB, 0))
    cfg = config if config is not None else MigrationConfig(
        mem_chunk_pages=64, mem_dirty_threshold_pages=8)
    copier = MemoryPreCopier(env, src, PageStreamer(env, src, dst, chan, cfg),
                             cfg)
    if dirty_proc is not None:
        env.process(dirty_proc(env, src))

    def proc(env):
        return (yield from copier.run())

    rounds = env.run(until=env.process(proc(env)))
    return rounds, src, dst


class TestQuietMemory:
    def test_one_round_when_idle(self, env):
        rounds, src, dst = run_memcopy(env)
        assert len(rounds) == 1
        assert rounds[0].units_sent == 512
        assert rounds[0].dirty_at_end == 0
        assert dst.identical_to(src)

    def test_logging_left_enabled(self, env):
        _, src, _ = run_memcopy(env)
        assert src.logging  # harvested later by freeze-and-copy


class TestDirtyMemory:
    def test_rounds_shrink_with_bounded_wss(self, env):
        rng = np.random.default_rng(0)

        def dirtier(env, mem):
            while True:
                mem.touch(rng.integers(0, 64, size=4))  # small hot set
                yield env.timeout(0.001)

        rounds, src, dst = run_memcopy(env, dirty_proc=dirtier)
        assert len(rounds) >= 2
        assert rounds[-1].units_sent <= rounds[0].units_sent
        # Residual dirty set stays near the WSS, handed to freeze-and-copy.
        assert src.dirty_count() <= 64 + 8

    def test_round_cap(self, env):
        rng = np.random.default_rng(0)

        def dirtier(env, mem):
            while True:
                mem.touch(rng.integers(0, 512, size=64))  # WSS = all pages
                yield env.timeout(0.0005)

        cfg = MigrationConfig(mem_chunk_pages=64,
                              mem_dirty_threshold_pages=1, max_mem_rounds=4)
        rounds, _, _ = run_memcopy(env, dirty_proc=dirtier, config=cfg)
        assert len(rounds) <= 4

    def test_nonconvergence_stops_early(self, env):
        rng = np.random.default_rng(0)

        def dirtier(env, mem):
            while True:
                mem.touch(rng.integers(0, 512, size=128))
                yield env.timeout(0.0002)

        cfg = MigrationConfig(mem_chunk_pages=64,
                              mem_dirty_threshold_pages=1, max_mem_rounds=30)
        rounds, _, _ = run_memcopy(env, dirty_proc=dirtier, config=cfg)
        # Dirtying outruns sending: must bail long before the cap.
        assert len(rounds) < 30
