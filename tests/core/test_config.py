"""Unit tests for MigrationConfig validation."""

import pytest

from repro.core import MigrationConfig
from repro.errors import MigrationError


class TestValidation:
    def test_defaults_are_valid(self):
        cfg = MigrationConfig()
        assert cfg.bitmap_layout == "flat"
        assert cfg.include_memory
        assert cfg.rate_limit is None

    def test_unknown_bitmap_layout(self):
        with pytest.raises(MigrationError):
            MigrationConfig(bitmap_layout="tree")

    def test_chunk_blocks_positive(self):
        with pytest.raises(MigrationError):
            MigrationConfig(chunk_blocks=0)

    def test_iterations_positive(self):
        with pytest.raises(MigrationError):
            MigrationConfig(max_disk_iterations=0)
        with pytest.raises(MigrationError):
            MigrationConfig(max_mem_rounds=0)

    def test_verify_retry_budget_non_negative(self):
        with pytest.raises(MigrationError):
            MigrationConfig(verify_retry_budget=-0.1)
        assert MigrationConfig(verify_retry_budget=0.0)  # zero = one check

    def test_verify_retry_interval_positive(self):
        with pytest.raises(MigrationError):
            MigrationConfig(verify_retry_interval=0.0)

    def test_rate_limit_positive_when_set(self):
        with pytest.raises(MigrationError):
            MigrationConfig(rate_limit=0)
        MigrationConfig(rate_limit=1000)  # fine

    def test_push_chunk_positive(self):
        with pytest.raises(MigrationError):
            MigrationConfig(push_chunk_blocks=0)

    def test_dirty_rate_fraction_positive(self):
        with pytest.raises(MigrationError):
            MigrationConfig(dirty_rate_stop_fraction=0)

    def test_pipeline_depth_at_least_one(self):
        with pytest.raises(MigrationError):
            MigrationConfig(pipeline_depth=0)
        with pytest.raises(MigrationError):
            MigrationConfig(pipeline_depth=-3)
        assert MigrationConfig().pipeline_depth == 2
        assert MigrationConfig(pipeline_depth=1).pipeline_depth == 1
        assert MigrationConfig(pipeline_depth=8).pipeline_depth == 8


class TestReplace:
    def test_replace_returns_modified_copy(self):
        cfg = MigrationConfig()
        limited = cfg.replace(rate_limit=1e6)
        assert limited.rate_limit == 1e6
        assert cfg.rate_limit is None

    def test_replace_validates(self):
        with pytest.raises(MigrationError):
            MigrationConfig().replace(chunk_blocks=-1)
