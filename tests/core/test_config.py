"""Unit tests for MigrationConfig validation."""

import pytest

from repro.core import MigrationConfig
from repro.errors import MigrationError


class TestValidation:
    def test_defaults_are_valid(self):
        cfg = MigrationConfig()
        assert cfg.bitmap_layout == "flat"
        assert cfg.include_memory
        assert cfg.rate_limit is None

    def test_unknown_bitmap_layout(self):
        with pytest.raises(MigrationError):
            MigrationConfig(bitmap_layout="tree")

    def test_chunk_blocks_positive(self):
        with pytest.raises(MigrationError):
            MigrationConfig(chunk_blocks=0)

    def test_iterations_positive(self):
        with pytest.raises(MigrationError):
            MigrationConfig(max_disk_iterations=0)
        with pytest.raises(MigrationError):
            MigrationConfig(max_mem_rounds=0)

    def test_verify_retry_budget_non_negative(self):
        with pytest.raises(MigrationError):
            MigrationConfig(verify_retry_budget=-0.1)
        assert MigrationConfig(verify_retry_budget=0.0)  # zero = one check

    def test_verify_retry_interval_positive(self):
        with pytest.raises(MigrationError):
            MigrationConfig(verify_retry_interval=0.0)

    def test_rate_limit_positive_when_set(self):
        with pytest.raises(MigrationError):
            MigrationConfig(rate_limit=0)
        MigrationConfig(rate_limit=1000)  # fine

    def test_push_chunk_positive(self):
        with pytest.raises(MigrationError):
            MigrationConfig(push_chunk_blocks=0)

    def test_dirty_rate_fraction_positive(self):
        with pytest.raises(MigrationError):
            MigrationConfig(dirty_rate_stop_fraction=0)

    def test_pipeline_depth_at_least_one(self):
        with pytest.raises(MigrationError):
            MigrationConfig(pipeline_depth=0)
        with pytest.raises(MigrationError):
            MigrationConfig(pipeline_depth=-3)
        assert MigrationConfig().pipeline_depth == 2
        assert MigrationConfig(pipeline_depth=1).pipeline_depth == 1
        assert MigrationConfig(pipeline_depth=8).pipeline_depth == 8

    def test_adaptive_stack_defaults_off(self):
        cfg = MigrationConfig()
        assert cfg.delta_cache_mb == 0.0
        assert cfg.multifd_channels == 1
        assert cfg.auto_converge is False
        assert cfg.compression_ratios is None

    def test_delta_knobs_validated(self):
        with pytest.raises(MigrationError):
            MigrationConfig(delta_cache_mb=-1.0)
        with pytest.raises(MigrationError):
            MigrationConfig(delta_ratio=0.9)
        with pytest.raises(MigrationError):
            MigrationConfig(delta_throughput=0)
        assert MigrationConfig(delta_cache_mb=64.0, delta_ratio=4.0)

    def test_multifd_channels_at_least_one(self):
        with pytest.raises(MigrationError):
            MigrationConfig(multifd_channels=0)
        with pytest.raises(MigrationError):
            MigrationConfig(multifd_channels=-2)
        assert MigrationConfig(multifd_channels=8).multifd_channels == 8

    def test_auto_converge_knobs_validated(self):
        with pytest.raises(MigrationError):
            MigrationConfig(auto_converge_start=1.0)  # must exceed 1x
        with pytest.raises(MigrationError):
            MigrationConfig(auto_converge_step=0.0)
        with pytest.raises(MigrationError):
            MigrationConfig(auto_converge_max_factor=1.5,
                            auto_converge_start=2.0)  # cap below start
        with pytest.raises(MigrationError):
            MigrationConfig(auto_converge_max_iterations=0)
        assert MigrationConfig(auto_converge=True)  # defaults are coherent

    def test_compression_ratios_validated(self):
        with pytest.raises(MigrationError):
            MigrationConfig(compression_ratios={"memory": 0.5})
        cfg = MigrationConfig(compression_ratios={"memory": 4.0,
                                                  "disk": 1.5})
        assert cfg.compression_ratios["memory"] == 4.0


class TestReplace:
    def test_replace_returns_modified_copy(self):
        cfg = MigrationConfig()
        limited = cfg.replace(rate_limit=1e6)
        assert limited.rate_limit == 1e6
        assert cfg.rate_limit is None

    def test_replace_validates(self):
        with pytest.raises(MigrationError):
            MigrationConfig().replace(chunk_blocks=-1)
