"""Unit tests for FlatBitmap."""

import numpy as np
import pytest

from repro.bitmap import FlatBitmap
from repro.errors import BitmapError


class TestBasics:
    def test_starts_clean(self):
        bm = FlatBitmap(100)
        assert bm.count() == 0
        assert not bm.any()

    def test_set_test_clear(self):
        bm = FlatBitmap(100)
        bm.set(7)
        assert bm.test(7)
        assert bm.count() == 1
        bm.clear(7)
        assert not bm.test(7)

    def test_setitem_getitem(self):
        bm = FlatBitmap(10)
        bm[3] = True
        assert bm[3]
        bm[3] = False
        assert not bm[3]

    def test_zero_size_rejected(self):
        with pytest.raises(BitmapError):
            FlatBitmap(0)

    def test_out_of_range_rejected(self):
        bm = FlatBitmap(10)
        with pytest.raises(BitmapError):
            bm.set(10)
        with pytest.raises(BitmapError):
            bm.test(-1)

    def test_len(self):
        assert len(FlatBitmap(42)) == 42


class TestBulk:
    def test_set_many(self):
        bm = FlatBitmap(100)
        bm.set_many(np.array([1, 5, 99]))
        assert bm.dirty_indices().tolist() == [1, 5, 99]

    def test_set_many_out_of_range(self):
        bm = FlatBitmap(10)
        with pytest.raises(BitmapError):
            bm.set_many(np.array([5, 10]))

    def test_set_range(self):
        bm = FlatBitmap(100)
        bm.set_range(10, 5)
        assert bm.dirty_indices().tolist() == [10, 11, 12, 13, 14]

    def test_set_range_empty(self):
        bm = FlatBitmap(100)
        bm.set_range(10, 0)
        assert bm.count() == 0

    def test_set_range_beyond_end_rejected(self):
        bm = FlatBitmap(10)
        with pytest.raises(BitmapError):
            bm.set_range(8, 3)

    def test_clear_many(self):
        bm = FlatBitmap(10)
        bm.set_all()
        bm.clear_many(np.array([0, 9]))
        assert bm.count() == 8

    def test_set_all_and_reset(self):
        bm = FlatBitmap(50)
        bm.set_all()
        assert bm.count() == 50
        bm.reset()
        assert bm.count() == 0


class TestWholeBitmap:
    def test_copy_is_independent(self):
        bm = FlatBitmap(10)
        bm.set(1)
        clone = bm.copy()
        clone.set(2)
        assert not bm.test(2)
        assert clone.test(1)

    def test_union_update(self):
        a, b = FlatBitmap(10), FlatBitmap(10)
        a.set(1)
        b.set(2)
        a.union_update(b)
        assert a.dirty_indices().tolist() == [1, 2]
        assert b.count() == 1  # other unchanged

    def test_union_size_mismatch(self):
        with pytest.raises(BitmapError):
            FlatBitmap(10).union_update(FlatBitmap(11))

    def test_serialized_nbytes_is_packed_size(self):
        # Paper: 4KiB-granularity bitmap for 32 GiB = 1 MiB.
        nblocks_32gib = 32 * 1024 * 1024 // 4
        assert FlatBitmap(nblocks_32gib).serialized_nbytes() == 1024 * 1024

    def test_serialized_rounds_up(self):
        assert FlatBitmap(9).serialized_nbytes() == 2

    def test_pack_unpack_roundtrip(self):
        bm = FlatBitmap(77)
        bm.set_many(np.array([0, 13, 76]))
        packed = bm.pack()
        restored = FlatBitmap.unpack(packed, 77)
        assert np.array_equal(restored.to_bool_array(), bm.to_bool_array())

    def test_to_bool_array_is_copy(self):
        bm = FlatBitmap(5)
        arr = bm.to_bool_array()
        arr[0] = True
        assert not bm.test(0)

    def test_iter_dirty(self):
        bm = FlatBitmap(10)
        bm.set(4)
        bm.set(2)
        assert list(bm.iter_dirty()) == [2, 4]
