"""Unit tests for bit-granularity arithmetic."""

import pytest

from repro.bitmap import (
    bitmap_wire_nbytes,
    block_to_sectors,
    blocks_for_size,
    byte_range_to_blocks,
    granularity_cost,
    make_bitmap,
    sectors_to_block,
)
from repro.bitmap.flat import FlatBitmap
from repro.bitmap.layered import LayeredBitmap
from repro.errors import BitmapError
from repro.units import GiB, KiB, MiB


class TestBlocksForSize:
    def test_exact(self):
        assert blocks_for_size(8 * KiB, 4 * KiB) == 2

    def test_rounds_up(self):
        assert blocks_for_size(8 * KiB + 1, 4 * KiB) == 3

    def test_rejects_nonpositive(self):
        with pytest.raises(BitmapError):
            blocks_for_size(0)
        with pytest.raises(BitmapError):
            blocks_for_size(100, 0)


class TestByteRangeToBlocks:
    def test_aligned(self):
        assert byte_range_to_blocks(0, 4 * KiB) == (0, 1)
        assert byte_range_to_blocks(4 * KiB, 8 * KiB) == (1, 2)

    def test_unaligned_start(self):
        # Write of 100 bytes at offset 4000 straddles blocks 0 and 1.
        assert byte_range_to_blocks(4000, 200, 4 * KiB) == (0, 2)

    def test_sub_block_write_dirties_whole_block(self):
        assert byte_range_to_blocks(5000, 1, 4 * KiB) == (1, 1)

    def test_zero_length(self):
        assert byte_range_to_blocks(8192, 0, 4 * KiB) == (2, 0)

    def test_negative_rejected(self):
        with pytest.raises(BitmapError):
            byte_range_to_blocks(-1, 10)
        with pytest.raises(BitmapError):
            byte_range_to_blocks(0, -1)


class TestSectorMapping:
    def test_sectors_to_block(self):
        # 8 sectors of 512B per 4KiB block.
        assert sectors_to_block(0) == 0
        assert sectors_to_block(7) == 0
        assert sectors_to_block(8) == 1

    def test_block_to_sectors(self):
        assert list(block_to_sectors(1)) == [8, 9, 10, 11, 12, 13, 14, 15]

    def test_negative_sector(self):
        with pytest.raises(BitmapError):
            sectors_to_block(-1)


class TestWireSize:
    def test_paper_figures(self):
        # Paper §IV-A-2: 32GB disk -> 1MB bitmap at 4KB bits, 8MB at 512B.
        assert bitmap_wire_nbytes(32 * GiB, 4 * KiB) == 1 * MiB
        assert bitmap_wire_nbytes(32 * GiB, 512) == 8 * MiB


class TestGranularityCost:
    def test_amplification_for_sub_block_writes(self):
        # 100 writes of 512B, each to a distinct 4KiB block offset.
        writes = [(i * 4 * KiB, 512) for i in range(100)]
        coarse = granularity_cost(writes, 1 * MiB, 4 * KiB)
        fine = granularity_cost(writes, 1 * MiB, 512)
        assert coarse.amplification == pytest.approx(8.0)
        assert fine.amplification == pytest.approx(1.0)
        assert coarse.bitmap_nbytes < fine.bitmap_nbytes

    def test_full_block_writes_have_no_amplification(self):
        writes = [(i * 4 * KiB, 4 * KiB) for i in range(10)]
        cost = granularity_cost(writes, 1 * MiB, 4 * KiB)
        assert cost.amplification == pytest.approx(1.0)
        assert cost.dirty_units == 10

    def test_write_beyond_disk_rejected(self):
        with pytest.raises(BitmapError):
            granularity_cost([(1 * MiB - 100, 200)], 1 * MiB, 4 * KiB)

    def test_empty_trace(self):
        cost = granularity_cost([], 1 * MiB, 4 * KiB)
        assert cost.dirty_units == 0
        assert cost.amplification == 1.0


class TestFactory:
    def test_flat(self):
        assert isinstance(make_bitmap(10, "flat"), FlatBitmap)

    def test_layered(self):
        assert isinstance(make_bitmap(10, "layered"), LayeredBitmap)

    def test_unknown(self):
        with pytest.raises(BitmapError):
            make_bitmap(10, "nested")
