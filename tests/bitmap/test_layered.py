"""Unit tests for LayeredBitmap."""

import numpy as np
import pytest

from repro.bitmap import FlatBitmap, LayeredBitmap
from repro.errors import BitmapError


@pytest.fixture
def bm():
    return LayeredBitmap(1000, leaf_bits=100)


class TestLazyAllocation:
    def test_no_leaves_at_start(self, bm):
        assert bm.allocated_leaves == 0
        assert bm.count() == 0

    def test_set_allocates_one_leaf(self, bm):
        bm.set(150)
        assert bm.allocated_leaves == 1
        assert bm.test(150)

    def test_test_does_not_allocate(self, bm):
        assert not bm.test(500)
        assert bm.allocated_leaves == 0

    def test_clear_does_not_allocate(self, bm):
        bm.clear(500)
        assert bm.allocated_leaves == 0

    def test_reset_frees_leaves(self, bm):
        bm.set_many(np.array([1, 101, 201]))
        assert bm.allocated_leaves == 3
        bm.reset()
        assert bm.allocated_leaves == 0
        assert bm.count() == 0

    def test_memory_grows_with_dirt_spread(self):
        sparse = LayeredBitmap(100_000, leaf_bits=1000)
        sparse.set(5)
        dense = LayeredBitmap(100_000, leaf_bits=1000)
        dense.set_many(np.arange(0, 100_000, 1000))
        assert sparse.memory_nbytes() < dense.memory_nbytes()


class TestCorrectnessVsFlat:
    def test_random_ops_match_flat(self):
        rng = np.random.default_rng(42)
        layered = LayeredBitmap(503, leaf_bits=64)
        flat = FlatBitmap(503)
        for _ in range(50):
            idx = rng.integers(0, 503, size=rng.integers(1, 20))
            if rng.random() < 0.7:
                layered.set_many(idx)
                flat.set_many(idx)
            else:
                layered.clear_many(idx)
                flat.clear_many(idx)
        assert np.array_equal(layered.to_bool_array(), flat.to_bool_array())
        assert layered.count() == flat.count()

    def test_set_range_spanning_leaves(self, bm):
        bm.set_range(95, 10)  # crosses the 100-bit leaf boundary
        assert bm.dirty_indices().tolist() == list(range(95, 105))
        assert bm.allocated_leaves == 2

    def test_set_range_to_last_block(self):
        bm = LayeredBitmap(250, leaf_bits=100)  # last leaf is short (50)
        bm.set_range(240, 10)
        assert bm.count() == 10
        assert bm.test(249)

    def test_set_all(self, bm):
        bm.set_all()
        assert bm.count() == 1000

    def test_last_short_leaf_set_all(self):
        bm = LayeredBitmap(105, leaf_bits=100)
        bm.set_all()
        assert bm.count() == 105


class TestWireCost:
    def test_empty_costs_only_top_layer(self, bm):
        assert bm.serialized_nbytes() == (10 + 7) // 8

    def test_sparse_cheaper_than_flat(self):
        layered = LayeredBitmap(80_000, leaf_bits=8000)
        flat = FlatBitmap(80_000)
        for b in (layered, flat):
            b.set(42)  # single dirty block
        assert layered.serialized_nbytes() < flat.serialized_nbytes()

    def test_dense_close_to_flat(self):
        layered = LayeredBitmap(80_000, leaf_bits=8000)
        layered.set_all()
        flat = FlatBitmap(80_000)
        # All leaves dirty: layered pays flat size + top layer.
        assert layered.serialized_nbytes() == flat.serialized_nbytes() + 2


class TestWholeBitmap:
    def test_copy_independent(self, bm):
        bm.set(5)
        clone = bm.copy()
        clone.set(6)
        assert not bm.test(6)

    def test_union_with_layered(self, bm):
        other = LayeredBitmap(1000, leaf_bits=100)
        bm.set(1)
        other.set(999)
        bm.union_update(other)
        assert bm.dirty_indices().tolist() == [1, 999]

    def test_union_with_flat(self, bm):
        other = FlatBitmap(1000)
        other.set(500)
        bm.union_update(other)
        assert bm.test(500)

    def test_union_size_mismatch(self, bm):
        with pytest.raises(BitmapError):
            bm.union_update(FlatBitmap(999))

    def test_union_mismatched_leaf_size(self, bm):
        other = LayeredBitmap(1000, leaf_bits=64)
        other.set(3)
        bm.union_update(other)
        assert bm.test(3)

    def test_compact_frees_clean_leaves(self, bm):
        bm.set(5)
        bm.clear(5)
        assert bm.allocated_leaves == 1
        bm.compact()
        assert bm.allocated_leaves == 0
        assert bm.serialized_nbytes() == (10 + 7) // 8

    def test_bad_leaf_bits(self):
        with pytest.raises(BitmapError):
            LayeredBitmap(100, leaf_bits=0)
