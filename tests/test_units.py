"""Unit tests for unit constants and formatting helpers."""

import pytest

from repro.units import (
    BLOCK_SIZE,
    GiB,
    Gbps,
    KiB,
    MB,
    Mbps,
    MiB,
    SECTOR_SIZE,
    fmt_bytes,
    fmt_time,
)


class TestConstants:
    def test_binary_units(self):
        assert KiB == 1024
        assert MiB == 1024 ** 2
        assert GiB == 1024 ** 3

    def test_network_rates_are_bytes_per_second(self):
        assert Mbps == 125_000
        assert Gbps == 125_000_000

    def test_paper_geometry(self):
        assert SECTOR_SIZE == 512
        assert BLOCK_SIZE == 4096
        assert BLOCK_SIZE // SECTOR_SIZE == 8


class TestFormatting:
    @pytest.mark.parametrize("value,expected", [
        (512, "512 B"),
        (2 * KiB, "2.0 KiB"),
        (3 * MiB, "3.0 MiB"),
        (5 * GiB, "5.0 GiB"),
        (0, "0 B"),
    ])
    def test_fmt_bytes(self, value, expected):
        assert fmt_bytes(value) == expected

    @pytest.mark.parametrize("value,expected", [
        (2.0, "2.0 s"),
        (0.0625, "62.5 ms"),
        (25e-6, "25.0 µs"),
    ])
    def test_fmt_time(self, value, expected):
        assert fmt_time(value) == expected


class TestErrorHierarchy:
    def test_all_errors_derive_from_repro_error(self):
        from repro import errors

        leaf_errors = [
            errors.SimulationError, errors.StaleSchedulingError,
            errors.BitmapError, errors.StorageError,
            errors.ConsistencyError, errors.NetworkError,
            errors.MigrationError, errors.MigrationAborted,
        ]
        for exc in leaf_errors:
            assert issubclass(exc, errors.ReproError)

    def test_specialisations(self):
        from repro import errors

        assert issubclass(errors.ConsistencyError, errors.StorageError)
        assert issubclass(errors.MigrationAborted, errors.MigrationError)
        assert issubclass(errors.StaleSchedulingError, errors.SimulationError)
