"""Unit tests for the four baseline migration schemes."""

import pytest

from repro.analysis.experiments import run_baseline_experiment
from repro.baselines import (
    DeltaQueueMigration,
    FreezeAndCopyMigration,
    OnDemandMigration,
    SharedStorageMigration,
    availability,
)
from repro.net import Channel

SCALE = 0.003


def run_scheme(bed, cls, config=None, **kwargs):
    fwd, rev = bed.channels("baseline")
    migration = cls(bed.env, bed.domain, bed.source, bed.destination,
                    fwd, rev, config if config is not None else bed.config,
                    **kwargs)
    proc = bed.env.process(migration.run(), name="baseline")
    return bed.env.run(until=proc), migration


class TestSharedStorage:
    def test_disk_not_transferred(self, bed):
        report, _ = run_scheme(bed, SharedStorageMigration)
        assert "disk" not in report.bytes_by_category
        assert report.bytes_by_category["memory"] > 0
        assert report.consistency_verified

    def test_same_vbd_object_on_destination(self, bed):
        run_scheme(bed, SharedStorageMigration)
        assert bed.destination.vbd_of(bed.domain.domain_id) is bed.vbd

    def test_short_downtime(self, bed):
        report, _ = run_scheme(bed, SharedStorageMigration)
        assert report.downtime < 0.1


class TestFreezeAndCopy:
    def test_downtime_equals_total(self, bed):
        report, _ = run_scheme(bed, FreezeAndCopyMigration)
        assert report.downtime == pytest.approx(report.total_migration_time,
                                                rel=0.01)

    def test_consistent(self, bed):
        bed.random_writer(interval=0.005)
        bed.env.run(until=1.0)
        report, _ = run_scheme(bed, FreezeAndCopyMigration)
        assert report.consistency_verified

    def test_minimal_data_no_retransfers(self, bed):
        report, _ = run_scheme(bed, FreezeAndCopyMigration)
        floor = bed.vbd.nbytes + bed.domain.memory.nbytes
        # Only headers/indices on top of one copy of the state.
        assert report.migrated_bytes < 1.02 * floor

    def test_downtime_dwarfs_tpm(self, make_bed):
        frozen = make_bed()
        tpm = make_bed()
        fc_report, _ = run_scheme(frozen, FreezeAndCopyMigration)
        tpm_report = tpm.migrate()
        assert fc_report.downtime > 100 * tpm_report.downtime


class TestOnDemand:
    def test_residual_dependency(self, bed):
        import numpy as np

        bed.random_writer(interval=0.01)
        bed.env.run(until=0.5)
        report, mig = run_scheme(bed, OnDemandMigration)
        assert report.extra["residual_blocks_at_resume"] > 0
        assert mig.dependency_alive

        rng = np.random.default_rng(9)

        def reader(env):
            while True:
                yield from bed.domain.read(int(rng.integers(0, 2000)))
                yield env.timeout(0.01)

        bed.env.process(reader(bed.env))
        # Run the guest a while: fetches happen, dependency persists.
        bed.env.run(until=bed.env.now + 2.0)
        assert mig.fetched_blocks > 0
        assert mig.dependency_alive  # never finishes on its own
        mig.stop()
        bed.env.run(until=bed.env.now + 0.1)

    def test_reads_stall_on_fetch(self, bed):
        report, mig = run_scheme(bed, OnDemandMigration)
        done = {}

        def guest(env):
            yield from bed.domain.read(50)
            done["at"] = env.now

        bed.env.process(guest(bed.env))
        bed.env.run(until=bed.env.now + 1.0)
        assert done["at"] > 0
        assert mig.stalled_reads >= 1
        assert mig.present.test(50)
        mig.stop()
        bed.env.run(until=bed.env.now + 0.1)

    def test_whole_block_write_needs_no_fetch(self, bed):
        report, mig = run_scheme(bed, OnDemandMigration)

        def guest(env):
            yield from bed.domain.write(60)

        bed.env.run(until=bed.env.process(guest(bed.env)))
        assert mig.present.test(60)
        assert mig.stalled_reads == 0
        mig.stop()
        bed.env.run(until=bed.env.now + 0.1)

    def test_availability_formula(self):
        assert availability(0.99) == pytest.approx(0.9801)
        assert availability(0.9, machines=3) == pytest.approx(0.729)
        with pytest.raises(ValueError):
            availability(1.5)


class TestDeltaQueue:
    def test_consistent_under_writes(self, bed):
        bed.random_writer(region=(0, 500), interval=0.005)
        bed.env.run(until=0.5)
        report, mig = run_scheme(bed, DeltaQueueMigration)
        assert report.consistency_verified
        assert report.extra["delta_count"] > 0

    def test_redundancy_under_rewrites(self, bed):
        # Hammer a tiny region so rewrites are guaranteed.
        bed.random_writer(region=(0, 10), interval=0.002)
        bed.env.run(until=0.5)
        report, mig = run_scheme(bed, DeltaQueueMigration)
        assert report.extra["redundant_blocks"] > 0

    def test_io_block_time_measured(self, bed):
        bed.random_writer(region=(0, 500), interval=0.003)
        bed.env.run(until=0.5)
        report, _ = run_scheme(bed, DeltaQueueMigration)
        assert report.extra["io_block_time"] >= 0

    def test_guest_io_blocked_until_replay_done(self, bed):
        bed.random_writer(region=(0, 500), interval=0.003)
        bed.env.run(until=0.5)
        report, _ = run_scheme(bed, DeltaQueueMigration)
        # After run() returns, replay is done and I/O flows again.
        done = {}

        def guest(env):
            yield from bed.domain.read(5)
            done["at"] = env.now

        bed.env.run(until=bed.env.process(guest(bed.env)))
        assert "at" in done

    def test_throttling_engages(self, make_bed):
        bed = make_bed(link_bw=2_000_000)  # slow link: backlog builds
        bed.random_writer(region=(0, 1000), interval=0.001, nblocks=8)
        bed.env.run(until=0.5)
        report, mig = run_scheme(bed, DeltaQueueMigration,
                                 throttle_watermark=64 * 4096)
        assert report.consistency_verified
        assert report.extra["throttle_time"] > 0


class TestViaRunner:
    @pytest.mark.parametrize("scheme", ["shared-storage", "freeze-and-copy",
                                        "delta-queue"])
    def test_runner_executes_scheme(self, scheme):
        report, bed, _ = run_baseline_experiment(scheme, "idle", scale=SCALE,
                                                 warmup=1.0, tail=1.0)
        assert report.scheme == scheme

    def test_runner_on_demand_cleanup(self):
        report, bed, mig = run_baseline_experiment("on-demand", "idle",
                                                   scale=SCALE, warmup=1.0,
                                                   tail=1.0)
        assert report.scheme == "on-demand"
        mig.stop()
        bed.env.run(until=bed.env.now + 0.1)
