"""Unit tests for sim event primitives."""

import pytest

from repro.errors import SimulationError
from repro.sim import AllOf, AnyOf, Environment, Event, Timeout


@pytest.fixture
def env():
    return Environment()


class TestEvent:
    def test_starts_pending(self, env):
        ev = env.event()
        assert not ev.triggered
        assert not ev.processed

    def test_value_unavailable_before_trigger(self, env):
        ev = env.event()
        with pytest.raises(SimulationError):
            _ = ev.value
        with pytest.raises(SimulationError):
            _ = ev.ok

    def test_succeed_sets_value(self, env):
        ev = env.event()
        ev.succeed(42)
        assert ev.triggered
        assert ev.ok
        assert ev.value == 42

    def test_double_trigger_rejected(self, env):
        ev = env.event()
        ev.succeed()
        with pytest.raises(SimulationError):
            ev.succeed()
        with pytest.raises(SimulationError):
            ev.fail(RuntimeError("x"))

    def test_fail_requires_exception(self, env):
        ev = env.event()
        with pytest.raises(SimulationError):
            ev.fail("not an exception")

    def test_callbacks_run_on_processing(self, env):
        ev = env.event()
        seen = []
        ev.callbacks.append(lambda e: seen.append(e.value))
        ev.succeed("hello")
        assert seen == []  # not yet processed
        env.run()
        assert seen == ["hello"]
        assert ev.processed

    def test_unhandled_failure_raises_from_run(self, env):
        ev = env.event()
        ev.fail(ValueError("boom"))
        with pytest.raises(ValueError, match="boom"):
            env.run()

    def test_defused_failure_is_silent(self, env):
        ev = env.event()
        ev.fail(ValueError("boom"))
        ev.defuse()
        env.run()  # no raise


class TestTimeout:
    def test_fires_at_delay(self, env):
        t = env.timeout(2.5, value="done")
        env.run()
        assert env.now == 2.5
        assert t.value == "done"

    def test_negative_delay_rejected(self, env):
        with pytest.raises(SimulationError):
            env.timeout(-1)

    def test_zero_delay_fires_now(self, env):
        env.timeout(0)
        env.run()
        assert env.now == 0.0

    def test_ordering_among_timeouts(self, env):
        order = []
        for delay in (3, 1, 2):
            env.timeout(delay).callbacks.append(
                lambda e, d=delay: order.append(d))
        env.run()
        assert order == [1, 2, 3]


class TestConditions:
    def test_all_of_waits_for_all(self, env):
        t1, t2 = env.timeout(1, "a"), env.timeout(2, "b")
        cond = env.all_of([t1, t2])
        env.run()
        assert cond.triggered
        assert list(cond.value.values()) == ["a", "b"]
        assert env.now == 2

    def test_any_of_fires_on_first(self, env):
        t1, t2 = env.timeout(1, "a"), env.timeout(2, "b")
        fired_at = []
        cond = env.any_of([t1, t2])
        cond.callbacks.append(lambda e: fired_at.append(env.now))
        env.run()
        assert fired_at == [1]
        assert cond.value == {t1: "a"}

    def test_empty_all_of_fires_immediately(self, env):
        cond = env.all_of([])
        assert cond.triggered
        assert cond.value == {}

    def test_condition_propagates_failure(self, env):
        ev = env.event()
        cond = env.all_of([ev, env.timeout(5)])
        ev.fail(RuntimeError("inner"))
        with pytest.raises(RuntimeError, match="inner"):
            env.run(until=cond)

    def test_mixed_environment_rejected(self, env):
        other = Environment()
        with pytest.raises(SimulationError):
            env.all_of([env.timeout(1), other.timeout(1)])
