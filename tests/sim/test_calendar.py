"""Calendar-queue edge cases (the two-level scheduler in the Environment).

The calendar must be *observationally invisible*: engaging it, draining
buckets, and disengaging may never change dispatch order, clock values,
or error behaviour relative to the plain heap.  These tests force the
machinery through its corners — same-timestamp priority ties, lazily
cancelled resource requests sitting in a drained bucket, and ``peek()`` /
``run(until=)`` across bucket boundaries.
"""

import random

import pytest

from repro.errors import SimulationError
from repro.sim import Environment, NORMAL, URGENT, Resource


def _engaged_env(width=1.0):
    """An environment with the calendar switched on at a known width."""
    env = Environment()
    env._engage(width=width)
    assert env._cal_width == width
    return env


def _triggered(env, order, tag):
    ev = env.event()
    ev._ok, ev._value = True, None
    ev.callbacks.append(lambda _e: order.append(tag))
    return ev


class TestSameTimestampOrdering:
    def test_urgent_beats_normal_in_far_bucket(self):
        env = _engaged_env(width=1.0)
        order = []
        # Both land in bucket int(5.5 / 1.0) = 5, far from now=0.
        env.schedule(_triggered(env, order, "normal"), priority=NORMAL,
                     delay=5.5)
        env.schedule(_triggered(env, order, "urgent"), priority=URGENT,
                     delay=5.5)
        env.run()
        assert order == ["urgent", "normal"]
        assert env.now == 5.5

    def test_fifo_within_bucket_and_priority(self):
        env = _engaged_env(width=1.0)
        order = []
        for i in range(8):
            env.schedule(_triggered(env, order, i), delay=3.25)
        env.run()
        assert order == list(range(8))

    def test_ties_across_bucket_refill_keep_eid_order(self):
        # Entries scheduled into the same far bucket before and after a
        # near-heap drain must still dispatch in sequence order.
        env = _engaged_env(width=1.0)
        order = []
        env.schedule(_triggered(env, order, "a"), delay=2.5)

        def late_scheduler(env):
            yield env.timeout(1.0)
            env.schedule(_triggered(env, order, "b"), delay=1.5)  # also 2.5

        env.process(late_scheduler(env))
        env.run()
        assert order == ["a", "b"]

    def test_dispatch_order_matches_plain_heap(self):
        rng = random.Random(0xC0FFEE)
        stamps = [round(rng.uniform(0.0, 50.0), 3) for _ in range(400)]

        def run_one(engage):
            env = Environment(calendar_threshold=None)
            if engage:
                env._engage(width=0.7)
            order = []
            for i, delay in enumerate(stamps):
                prio = URGENT if i % 7 == 0 else NORMAL
                env.schedule(_triggered(env, order, i), priority=prio,
                             delay=delay)
            env.run()
            return order, env.now, env.events_processed

        assert run_one(False) == run_one(True)


class TestLazyCancelledRequests:
    def test_cancellation_fired_from_drained_bucket(self):
        # Three waiters queue behind a held resource; a Timeout sitting in
        # a far calendar bucket cancels the middle one before any grant.
        # The tombstone must be skipped when the holder releases.
        env = _engaged_env(width=1.0)
        res = Resource(env, capacity=1)
        holder = res.request()       # granted immediately
        first = res.request()
        second = res.request()
        third = res.request()
        granted = []
        for tag, req in (("first", first), ("second", second),
                         ("third", third)):
            req.callbacks.append(lambda _e, t=tag: granted.append(t))

        def canceller(env):
            yield env.timeout(4.5)   # far bucket 4
            res.release(second)      # still queued -> lazy tombstone

        def releaser(env):
            yield env.timeout(6.5)   # far bucket 6
            res.release(holder)
            yield env.timeout(1.0)
            res.release(first)
            yield env.timeout(1.0)
            res.release(third)

        env.process(canceller(env))
        env.process(releaser(env))
        env.run()
        assert granted == ["first", "third"]
        assert second._cancelled
        assert res.queue_length == 0

    def test_queue_length_sees_tombstone_across_buckets(self):
        env = _engaged_env(width=1.0)
        res = Resource(env, capacity=1)
        res.request()
        queued = res.request()
        assert res.queue_length == 1

        def canceller(env):
            yield env.timeout(10.25)
            res.release(queued)

        env.process(canceller(env))
        env.run()
        assert res.queue_length == 0


class TestBucketBoundaries:
    def test_peek_reaches_into_far_bucket(self):
        env = _engaged_env(width=1.0)
        env.timeout(7.5)
        # The timeout went to far bucket 7; the near heap is empty.
        assert not env._queue
        assert env.peek() == 7.5

    def test_peek_empty_calendar_is_inf(self):
        env = _engaged_env(width=1.0)
        assert env.peek() == float("inf")

    def test_run_until_mid_bucket_stops_exactly(self):
        env = _engaged_env(width=1.0)
        fired = []
        for delay in (3.2, 3.4, 3.8, 4.1):
            env.schedule(_triggered(env, fired, delay), delay=delay)
        env.run(until=3.5)
        assert env.now == 3.5
        assert fired == [3.2, 3.4]
        env.run()
        assert fired == [3.2, 3.4, 3.8, 4.1]

    def test_run_until_exact_bucket_edge_includes_edge_event(self):
        env = _engaged_env(width=1.0)
        fired = []
        env.schedule(_triggered(env, fired, "edge"), delay=3.0)
        env.schedule(_triggered(env, fired, "later"), delay=3.0001)
        env.run(until=3.0)
        assert fired == ["edge"]
        assert env.now == 3.0

    def test_run_until_horizon_spanning_many_buckets(self):
        env = _engaged_env(width=0.5)
        fired = []
        for delay in (0.6, 1.6, 2.6, 3.6, 4.6):
            env.schedule(_triggered(env, fired, delay), delay=delay)
        env.run(until=3.0)
        assert fired == [0.6, 1.6, 2.6]
        assert env.now == 3.0
        env.run()
        assert fired == [0.6, 1.6, 2.6, 3.6, 4.6]
        assert env.now == 4.6

    def test_trigger_after_horizon_jump_keeps_order(self):
        # After run(until=) jumps the clock into a far bucket's range,
        # an immediately-succeeded event (scheduled at `now`, straight to
        # the near heap) must not overtake the rest of that bucket.
        env = _engaged_env(width=1.0)
        fired = []
        env.schedule(_triggered(env, fired, "deferred"), delay=5.25)
        env.run(until=5.1)
        ev = _triggered(env, fired, "triggered")
        ev._value = "x"
        env.schedule(ev)  # at now=5.1 < 5.25
        env.run()
        assert fired == ["triggered", "deferred"]

    def test_step_pulls_far_bucket(self):
        env = _engaged_env(width=1.0)
        env.timeout(9.5)
        env.step()
        assert env.now == 9.5
        with pytest.raises(SimulationError):
            env.step()

    def test_run_until_event_in_far_bucket(self):
        env = _engaged_env(width=1.0)
        timeout = env.timeout(12.5, value="deep")
        assert env.run(until=timeout) == "deep"
        assert env.now == 12.5


class TestAdaptiveEngagement:
    def test_engages_above_threshold_and_drains_identically(self):
        env = Environment(calendar_threshold=512)
        fired = []
        rng = random.Random(7)
        delays = sorted(round(rng.uniform(0.0, 100.0), 4)
                        for _ in range(4000))
        for delay in delays:
            env.schedule(_triggered(env, fired, delay), delay=delay)
        env.run()
        assert fired == delays
        # The periodic load check crossed the threshold mid-run and
        # engaged the calendar; every bucket must have drained by the end.
        assert env._cal_width > 0.0
        assert env._far_count == 0

    def test_disengages_when_load_drops(self):
        env = Environment(calendar_threshold=512)
        fired = []
        # Phase 1: a dense burst that engages the calendar.  Phase 2: a
        # long sparse tail, so by the next periodic check the pending set
        # is tiny and the calendar must fall back to the plain heap.
        for i in range(4000):
            env.schedule(_triggered(env, fired, i), delay=i * 0.01)
        for i in range(2200):
            env.schedule(_triggered(env, fired, 4000 + i),
                         delay=100.0 + i)
        env.run(until=50.0)
        assert env._cal_width > 0.0        # engaged during the burst
        env.run()
        # By the tail's periodic load check the pending set had shrunk
        # below _CAL_LO, so the calendar must have dropped back to the
        # plain heap.
        assert env._cal_width == 0.0
        assert env._far_count == 0
        assert fired == list(range(6200))

    def test_disabled_threshold_never_engages(self):
        env = Environment(calendar_threshold=None)
        for i in range(5000):
            env.timeout(float(i))
        env.run()
        assert env._cal_width == 0.0
