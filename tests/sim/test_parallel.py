"""fork_map / run_forked: the multiprocessing execution backend."""

import os

import pytest

from repro.errors import SimulationError
from repro.sim import (Environment, ShardedEngine, WORKER_BACKENDS,
                       WorkerError, fork_available, fork_map, worker_count)


class TestWorkerCount:
    def test_zero_jobs_means_zero_workers(self):
        assert worker_count(0) == 0

    def test_capped_by_njobs(self):
        assert worker_count(2, nworkers=8) == 2

    def test_explicit_nworkers_respected(self):
        assert worker_count(8, nworkers=3) == 3

    def test_env_override_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_FORK_WORKERS", "1")
        assert worker_count(8, nworkers=4) == 1

    def test_env_override_zero_forces_inline(self, monkeypatch):
        monkeypatch.setenv("REPRO_FORK_WORKERS", "0")
        assert worker_count(8) == 0


class TestForkMap:
    def test_results_in_input_order(self):
        thunks = [lambda i=i: i * i for i in range(7)]
        assert fork_map(thunks, nworkers=3) == [i * i for i in range(7)]

    def test_empty_input(self):
        assert fork_map([]) == []

    def test_child_mutations_do_not_leak(self):
        if not fork_available():
            pytest.skip("platform cannot fork")
        state = {"value": 0}

        def mutate():
            state["value"] = 99
            return state["value"]

        assert fork_map([mutate], nworkers=1) == [99]
        assert state["value"] == 0  # the child owned a COW snapshot

    def test_inline_fallback_mutates_parent(self, monkeypatch):
        monkeypatch.setenv("REPRO_FORK_WORKERS", "0")
        state = {"value": 0}

        def mutate():
            state["value"] = 99
            return 1

        assert fork_map([mutate]) == [1]
        assert state["value"] == 99

    def test_child_exception_becomes_worker_error(self):
        if not fork_available():
            pytest.skip("platform cannot fork")

        def boom():
            raise ValueError("inner detail")

        with pytest.raises(WorkerError) as excinfo:
            fork_map([lambda: 1, boom], nworkers=2)
        assert "inner detail" in str(excinfo.value)
        assert "ValueError" in excinfo.value.child_traceback

    def test_unpicklable_result_is_an_error_not_corruption(self):
        if not fork_available():
            pytest.skip("platform cannot fork")
        with pytest.raises(WorkerError):
            fork_map([lambda: (x for x in range(3))], nworkers=1)

    def test_more_thunks_than_workers(self):
        thunks = [lambda i=i: i for i in range(10)]
        assert fork_map(thunks, nworkers=2) == list(range(10))


class TestErrorAggregation:
    def test_all_failing_indices_are_reported(self):
        if not fork_available():
            pytest.skip("platform cannot fork")

        def boom(msg):
            raise ValueError(msg)

        with pytest.raises(WorkerError) as excinfo:
            fork_map([lambda: 0, lambda: boom("first"),
                      lambda: 2, lambda: boom("second")], nworkers=2)
        error = excinfo.value
        assert error.failed_indices == (1, 3)
        assert "thunks: 1, 3" in str(error)
        # Both tracebacks survive, labelled by input position.
        assert "--- thunk 1 ---" in error.child_traceback
        assert "--- thunk 3 ---" in error.child_traceback
        assert "first" in error.child_traceback
        assert "second" in error.child_traceback
        assert error.__cause__ is not None  # first real exception chained

    def test_signal_death_is_decoded(self):
        if not fork_available():
            pytest.skip("platform cannot fork")

        def suicide():
            os.kill(os.getpid(), 9)  # SIGKILL: no traceback possible

        with pytest.raises(WorkerError) as excinfo:
            fork_map([suicide], nworkers=1)
        error = excinfo.value
        assert "SIGKILL" in error.child_traceback
        assert error.failed_indices == (-1,)
        assert "died silently" in str(error)

    def test_silent_exit_is_decoded(self):
        if not fork_available():
            pytest.skip("platform cannot fork")

        def vanish():
            os._exit(3)  # exits before writing any result

        with pytest.raises(WorkerError) as excinfo:
            fork_map([vanish], nworkers=1)
        assert "exited with status 3" in excinfo.value.child_traceback

    def test_mixed_exception_and_signal_death(self):
        if not fork_available():
            pytest.skip("platform cannot fork")

        def boom():
            raise RuntimeError("survivable")

        def suicide():
            os.kill(os.getpid(), 9)

        with pytest.raises(WorkerError) as excinfo:
            fork_map([boom, suicide], nworkers=2)
        error = excinfo.value
        assert -1 in error.failed_indices and 0 in error.failed_indices
        assert "RuntimeError" in error.child_traceback
        assert "SIGKILL" in error.child_traceback


class TestEngineBackend:
    def test_backend_validation(self):
        assert WORKER_BACKENDS == ("inline", "fork")
        with pytest.raises(SimulationError):
            ShardedEngine(lookahead=0.1, workers="threads")
        assert ShardedEngine(lookahead=0.1, workers="fork").workers == "fork"

    def test_run_forked_requires_quiescence_without_groups(self):
        engine = ShardedEngine(lookahead=0.1)
        engine.add_shard("rack0")
        engine.add_source()
        with pytest.raises(SimulationError):
            engine.run_forked(until=1.0)

    def test_run_forked_unknown_group_member_raises(self):
        engine = ShardedEngine(lookahead=0.1)
        engine.add_shard("rack0")
        with pytest.raises(SimulationError):
            engine.run_forked(until=1.0, groups=[["rack9"]])

    def test_run_forked_matches_inline_per_shard(self):
        if not fork_available():
            pytest.skip("platform cannot fork")

        def build():
            engine = ShardedEngine(lookahead=0.1)
            for i in range(3):
                shard = engine.add_shard(f"rack{i}")

                def ticker(env, step=0.01 * (i + 1)):
                    while True:
                        yield env.timeout(step)

                shard.env.process(ticker(shard.env), name="tick")
            return engine

        inline = build()
        inline.run(until=1.0)
        expected = {shard.name: dict(events=shard.env.events_processed,
                                     now=shard.env.now,
                                     inbox=len(shard.inbox))
                    for shard in inline._shards}

        forked = build()
        got = forked.run_forked(until=1.0, nworkers=2)
        assert got == expected
        # The parent's shards were never advanced — it is a map, not a run.
        assert all(shard.env.now == 0.0 for shard in forked._shards)

    def test_run_forked_inline_fallback_restores_engine(self, monkeypatch):
        monkeypatch.setenv("REPRO_FORK_WORKERS", "0")
        engine = ShardedEngine(lookahead=0.1)
        for i in range(2):
            engine.add_shard(f"rack{i}")
        engine.run_forked(until=0.5)
        # The narrowing in each thunk must not leak: both shards visible.
        assert len(engine._shards) == 2
        assert sorted(engine._by_name) == ["rack0", "rack1"]
