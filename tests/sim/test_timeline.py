"""Unit tests for the Timeline recorder."""

import numpy as np
import pytest

from repro.sim import Environment, Timeline


@pytest.fixture
def env():
    return Environment()


class TestTimeline:
    def test_record_and_series(self, env):
        tl = Timeline(env)

        def proc(env):
            tl.record("x", 1.0)
            yield env.timeout(2)
            tl.record("x", 3.0)

        env.process(proc(env))
        env.run()
        times, values = tl.series("x")
        assert times.tolist() == [0.0, 2.0]
        assert values.tolist() == [1.0, 3.0]

    def test_unknown_series_is_empty(self, env):
        tl = Timeline(env)
        times, values = tl.series("nope")
        assert times.size == 0 and values.size == 0

    def test_total(self, env):
        tl = Timeline(env)
        tl.record_at("x", 0.0, 5.0)
        tl.record_at("x", 1.0, 7.0)
        assert tl.total("x") == 12.0
        assert tl.total("missing") == 0.0

    def test_windowed_rate(self, env):
        tl = Timeline(env)
        # 10 bytes at t=0.5, 30 bytes at t=1.5 -> rates 10/s then 30/s
        tl.record_at("bytes", 0.5, 10)
        tl.record_at("bytes", 1.5, 30)
        centres, rate = tl.windowed_rate("bytes", window=1.0, t_end=2.0)
        assert np.allclose(centres, [0.5, 1.5])
        assert np.allclose(rate, [10.0, 30.0])

    def test_windowed_rate_rejects_bad_window(self, env):
        tl = Timeline(env)
        with pytest.raises(ValueError):
            tl.windowed_rate("x", window=0)

    def test_merge_with_prefix(self, env):
        a, b = Timeline(env), Timeline(env)
        b.record_at("x", 1.0, 2.0)
        a.merge(b, prefix="b:")
        assert a.total("b:x") == 2.0

    def test_series_names_sorted(self, env):
        tl = Timeline(env)
        tl.record_at("zebra", 0, 1)
        tl.record_at("apple", 0, 1)
        assert tl.series_names == ["apple", "zebra"]

    def test_clear_selected(self, env):
        tl = Timeline(env)
        tl.record_at("x", 0, 1)
        tl.record_at("y", 0, 1)
        tl.clear(["x"])
        assert tl.series_names == ["y"]
        tl.clear()
        assert tl.series_names == []
