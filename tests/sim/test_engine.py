"""Unit tests for the Environment event loop."""

import pytest

from repro.errors import SimulationError, StaleSchedulingError
from repro.sim import Environment, NORMAL, URGENT


@pytest.fixture
def env():
    return Environment()


class TestClock:
    def test_starts_at_initial_time(self):
        assert Environment(initial_time=5.0).now == 5.0

    def test_run_until_number_advances_clock_exactly(self, env):
        env.timeout(10)
        env.run(until=3.5)
        assert env.now == 3.5

    def test_run_until_past_is_rejected(self, env):
        env.timeout(1)
        env.run(until=2)
        with pytest.raises(StaleSchedulingError):
            env.run(until=1)

    def test_peek_empty_queue(self, env):
        assert env.peek() == float("inf")

    def test_peek_returns_next_event_time(self, env):
        env.timeout(7)
        env.timeout(3)
        assert env.peek() == 3

    def test_step_on_empty_queue_raises(self, env):
        with pytest.raises(SimulationError):
            env.step()


class TestScheduling:
    def test_urgent_beats_normal_at_same_time(self, env):
        order = []
        normal = env.event()
        urgent = env.event()
        normal.callbacks.append(lambda e: order.append("normal"))
        urgent.callbacks.append(lambda e: order.append("urgent"))
        normal._ok = urgent._ok = True
        normal._value = urgent._value = None
        env.schedule(normal, priority=NORMAL)
        env.schedule(urgent, priority=URGENT)
        env.run()
        assert order == ["urgent", "normal"]

    def test_fifo_within_same_time_and_priority(self, env):
        order = []
        for i in range(5):
            ev = env.event()
            ev._ok, ev._value = True, None
            ev.callbacks.append(lambda e, i=i: order.append(i))
            env.schedule(ev)
        env.run()
        assert order == [0, 1, 2, 3, 4]

    def test_negative_delay_rejected(self, env):
        with pytest.raises(StaleSchedulingError):
            env.schedule(env.event(), delay=-1)


class TestRunUntilEvent:
    def test_returns_event_value(self, env):
        assert env.run(until=env.timeout(2, value="v")) == "v"

    def test_already_processed_event(self, env):
        t = env.timeout(1, value="v")
        env.run()
        assert env.run(until=t) == "v"

    def test_queue_drain_before_event_raises(self, env):
        ev = env.event()  # never triggered
        env.timeout(1)
        with pytest.raises(SimulationError, match="drained"):
            env.run(until=ev)

    def test_failed_until_event_raises(self, env):
        def failer(env, ev):
            yield env.timeout(1)
            ev.fail(KeyError("k"))

        ev = env.event()
        env.process(failer(env, ev))
        with pytest.raises(KeyError):
            env.run(until=ev)

    def test_live_failed_event_defused_when_waiter_handled_it(self, env):
        """Live branch: a failure already handled by a waiter is re-raised
        to the run(until=...) caller and left defused."""
        ev = env.event()

        def failer(env):
            yield env.timeout(1)
            ev.fail(ValueError("boom"))

        def waiter(env):
            try:
                yield ev
            except ValueError:
                pass

        env.process(failer(env))
        env.process(waiter(env))
        with pytest.raises(ValueError):
            env.run(until=ev)
        assert ev._defused

    def test_already_processed_failed_event_raises_and_defuses(self, env):
        """The already-processed branch must behave like the live one:
        raise the failure AND defuse it."""

        def failer(env):
            yield env.timeout(1)
            raise KeyError("k")

        proc = env.process(failer(env))
        with pytest.raises(KeyError):
            env.run(until=proc)  # watchdog path; leaves proc undefused
        assert not proc._defused
        # Second run hits the already-processed branch: it hands the
        # failure to this caller, so it must defuse like the live branch.
        with pytest.raises(KeyError):
            env.run(until=proc)
        assert proc._defused

    def test_preprocessed_failed_event_defused_by_run(self, env):
        ev = env.event()
        ev.fail(ValueError("boom"))
        ev.defuse()
        env.run()  # processes the event; defused, so no crash
        with pytest.raises(ValueError):
            env.run(until=ev)
        assert ev._defused
