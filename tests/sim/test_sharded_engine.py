"""ShardedEngine: conservative windows, messaging, the fast path."""

import pytest

from repro.errors import SimulationError
from repro.sim import Environment, ShardedEngine


def make_engine(nshards=2, lookahead=0.1):
    engine = ShardedEngine(lookahead=lookahead)
    shards = [engine.add_shard(f"rack{i}") for i in range(nshards)]
    return engine, shards


class TestConstruction:
    def test_lookahead_must_be_positive(self):
        with pytest.raises(SimulationError):
            ShardedEngine(lookahead=0.0)
        with pytest.raises(SimulationError):
            ShardedEngine(lookahead=-1.0)

    def test_duplicate_shard_name_rejected(self):
        engine, _ = make_engine()
        with pytest.raises(SimulationError):
            engine.add_shard("rack0")

    def test_unknown_shard_lookup_raises(self):
        engine, _ = make_engine()
        with pytest.raises(SimulationError):
            engine.shard("rack9")

    def test_run_without_shards_raises(self):
        with pytest.raises(SimulationError):
            ShardedEngine(lookahead=0.1).step_window()


class TestSendContract:
    def test_send_requires_registered_source(self):
        engine, _ = make_engine()
        with pytest.raises(SimulationError):
            engine.send("rack1", 0.5, lambda env: None)

    def test_remove_source_underflow_raises(self):
        engine, _ = make_engine()
        with pytest.raises(SimulationError):
            engine.remove_source()

    def test_quiescent_tracks_sources_and_inboxes(self):
        engine, _ = make_engine()
        assert engine.quiescent
        engine.add_source()
        assert not engine.quiescent
        engine.send("rack1", 0.5, lambda env: None)
        engine.remove_source()
        # A queued message still pins the engine out of the fast path.
        assert not engine.quiescent
        engine.run(until=1.0)
        assert engine.quiescent


class TestWindows:
    def test_all_clocks_meet_at_until(self):
        engine, shards = make_engine(3)

        def ticker(env):
            while True:
                yield env.timeout(0.03)

        for shard in shards:
            shard.env.process(ticker(shard.env), name="tick")
        engine.run(until=1.0)
        assert all(shard.env.now == 1.0 for shard in shards)
        assert engine.now == 1.0

    def test_message_delivered_at_boundary_after_visibility(self):
        engine, shards = make_engine(lookahead=0.1)
        landed = []

        def sender(env):
            yield env.timeout(0.5)
            engine.send("rack1", env.now,
                        lambda dst: landed.append(dst.now))
            engine.remove_source()

        engine.add_source()
        shards[0].env.process(sender(shards[0].env), name="sender")
        engine.run(until=2.0)
        assert engine.messages_delivered == 1
        # Applied at a window boundary at or after visibility, never early.
        assert len(landed) == 1 and 0.5 <= landed[0] <= 2.0

    def test_messages_apply_in_visibility_then_send_order(self):
        engine, shards = make_engine()
        order = []
        engine.add_source()
        engine.send("rack1", 0.7, lambda env: order.append("late"))
        engine.send("rack1", 0.2, lambda env: order.append("early-a"))
        engine.send("rack1", 0.2, lambda env: order.append("early-b"))
        engine.remove_source()
        engine.run(until=1.0)
        assert order == ["early-a", "early-b", "late"]

    def test_quiescent_fast_path_runs_whole_span_in_one_window(self):
        engine, shards = make_engine()

        def ticker(env):
            while True:
                yield env.timeout(0.001)

        shards[0].env.process(ticker(shards[0].env), name="tick")
        engine.run(until=10.0)
        # 10,000 events, but no cross-shard sources: one wide window.
        assert shards[0].env.events_processed >= 10_000
        assert engine.windows == 1

    def test_conservative_windows_while_source_live(self):
        engine, shards = make_engine(lookahead=0.1)

        def ticker(env):
            while True:
                yield env.timeout(0.05)

        shards[0].env.process(ticker(shards[0].env), name="tick")
        engine.add_source()
        engine.run(until=1.0)
        engine.remove_source()
        # With a live source the engine must step in lookahead-bounded
        # windows instead of one wide pass.
        assert engine.windows > 1

    def test_step_window_returns_false_when_idle(self):
        engine, _ = make_engine()
        assert engine.step_window() is False

    def test_step_window_respects_until(self):
        engine, shards = make_engine()

        def once(env):
            yield env.timeout(5.0)

        shards[0].env.process(once(shards[0].env), name="once")
        engine.run(until=0.1)  # absorb the process-start event at t=0
        assert engine.step_window(until=1.0) is False
        assert engine.step_window(until=6.0) is True

    def test_stats_and_events_processed(self):
        engine, shards = make_engine()

        def once(env):
            yield env.timeout(0.1)

        shards[0].env.process(once(shards[0].env), name="once")
        engine.run(until=1.0)
        stats = engine.stats()
        assert set(stats) == {"rack0", "rack1"}
        assert stats["rack0"]["events"] == engine.events_processed
        assert stats["rack1"]["inbox"] == 0


class TestExternalEnvironments:
    def test_accepts_prebuilt_environments(self):
        engine = ShardedEngine(lookahead=0.1)
        env = Environment()
        shard = engine.add_shard("rack0", env)
        assert shard.env is env
        assert engine.shards[0].index == 0
