"""Unit tests for generator processes."""

import pytest

from repro.errors import SimulationError
from repro.sim import Environment, Interrupt


@pytest.fixture
def env():
    return Environment()


class TestProcess:
    def test_return_value_becomes_event_value(self, env):
        def proc(env):
            yield env.timeout(1)
            return "result"

        p = env.process(proc(env))
        assert env.run(until=p) == "result"
        assert env.now == 1

    def test_processes_interleave_by_time(self, env):
        log = []

        def worker(env, name, delay):
            yield env.timeout(delay)
            log.append((env.now, name))

        env.process(worker(env, "slow", 2))
        env.process(worker(env, "fast", 1))
        env.run()
        assert log == [(1, "fast"), (2, "slow")]

    def test_join_another_process(self, env):
        def child(env):
            yield env.timeout(3)
            return 99

        def parent(env):
            value = yield env.process(child(env))
            return value + 1

        assert env.run(until=env.process(parent(env))) == 100

    def test_exception_propagates_to_joiner(self, env):
        def child(env):
            yield env.timeout(1)
            raise ValueError("child died")

        def parent(env):
            yield env.process(child(env))

        with pytest.raises(ValueError, match="child died"):
            env.run(until=env.process(parent(env)))

    def test_unwaited_crash_surfaces_in_run(self, env):
        def crasher(env):
            yield env.timeout(1)
            raise RuntimeError("nobody is watching")

        env.process(crasher(env))
        with pytest.raises(RuntimeError, match="nobody is watching"):
            env.run()

    def test_yielding_non_event_fails_process(self, env):
        def bad(env):
            yield 42

        with pytest.raises(SimulationError, match="may only yield"):
            env.run(until=env.process(bad(env)))

    def test_yield_already_processed_event(self, env):
        ev = env.event()
        ev.succeed("early")

        def proc(env):
            yield env.timeout(1)
            value = yield ev  # long since processed
            return value

        assert env.run(until=env.process(proc(env))) == "early"

    def test_is_alive(self, env):
        def proc(env):
            yield env.timeout(5)

        p = env.process(proc(env))
        assert p.is_alive
        env.run()
        assert not p.is_alive


class TestInterrupt:
    def test_interrupt_delivers_cause(self, env):
        def sleeper(env):
            try:
                yield env.timeout(100)
            except Interrupt as interrupt:
                return ("interrupted", interrupt.cause, env.now)

        def killer(env, victim):
            yield env.timeout(2)
            victim.interrupt("maintenance")

        victim = env.process(sleeper(env))
        env.process(killer(env, victim))
        assert env.run(until=victim) == ("interrupted", "maintenance", 2)

    def test_interrupted_process_can_continue(self, env):
        def sleeper(env):
            try:
                yield env.timeout(100)
            except Interrupt:
                pass
            yield env.timeout(1)
            return env.now

        def killer(env, victim):
            yield env.timeout(2)
            victim.interrupt()

        victim = env.process(sleeper(env))
        env.process(killer(env, victim))
        assert env.run(until=victim) == 3

    def test_stale_timeout_does_not_resume_twice(self, env):
        resumed = []

        def sleeper(env):
            try:
                yield env.timeout(1)
            except Interrupt:
                resumed.append("interrupt")
            yield env.timeout(5)
            resumed.append("second sleep done")

        def killer(env, victim):
            yield env.timeout(0)
            victim.interrupt()

        victim = env.process(sleeper(env))
        env.process(killer(env, victim))
        env.run()
        assert resumed == ["interrupt", "second sleep done"]

    def test_interrupting_finished_process_is_error(self, env):
        def quick(env):
            yield env.timeout(1)

        p = env.process(quick(env))
        env.run()
        with pytest.raises(SimulationError):
            p.interrupt()
