"""Unit tests for Resource / Store / Container."""

import pytest

from repro.errors import SimulationError
from repro.sim import Container, Environment, Resource, Store


@pytest.fixture
def env():
    return Environment()


class TestResource:
    def test_capacity_must_be_positive(self, env):
        with pytest.raises(SimulationError):
            Resource(env, capacity=0)

    def test_serializes_users(self, env):
        res = Resource(env, capacity=1)
        log = []

        def user(env, name):
            with res.request() as req:
                yield req
                log.append((env.now, name, "in"))
                yield env.timeout(1)
            log.append((env.now, name, "out"))

        env.process(user(env, "a"))
        env.process(user(env, "b"))
        env.run()
        assert log == [(0, "a", "in"), (1, "a", "out"),
                       (1, "b", "in"), (2, "b", "out")]

    def test_capacity_two_allows_overlap(self, env):
        res = Resource(env, capacity=2)
        done = []

        def user(env, name):
            with res.request() as req:
                yield req
                yield env.timeout(1)
            done.append((env.now, name))

        for name in "abc":
            env.process(user(env, name))
        env.run()
        assert done == [(1, "a"), (1, "b"), (2, "c")]

    def test_priority_order(self, env):
        res = Resource(env, capacity=1)
        order = []

        def holder(env):
            with res.request() as req:
                yield req
                yield env.timeout(1)

        def user(env, name, prio):
            yield env.timeout(0.1)  # arrive while held
            with res.request(priority=prio) as req:
                yield req
                order.append(name)

        env.process(holder(env))
        env.process(user(env, "low", 5))
        env.process(user(env, "high", 1))
        env.run()
        assert order == ["high", "low"]

    def test_cancel_waiting_request(self, env):
        res = Resource(env, capacity=1)

        def holder(env):
            with res.request() as req:
                yield req
                yield env.timeout(2)

        def impatient(env):
            req = res.request()
            yield env.timeout(1)
            req.release()  # give up while still queued
            return "gave up"

        env.process(holder(env))
        p = env.process(impatient(env))
        assert env.run(until=p) == "gave up"
        assert res.queue_length == 0

    def test_count_and_queue_length(self, env):
        res = Resource(env, capacity=1)
        res.request()
        res.request()
        assert res.count == 1
        assert res.queue_length == 1


class TestStore:
    def test_fifo_order(self, env):
        store = Store(env)
        got = []

        def producer(env):
            for i in range(3):
                yield store.put(i)

        def consumer(env):
            for _ in range(3):
                item = yield store.get()
                got.append(item)

        env.process(producer(env))
        env.process(consumer(env))
        env.run()
        assert got == [0, 1, 2]

    def test_get_blocks_until_put(self, env):
        store = Store(env)
        times = []

        def consumer(env):
            item = yield store.get()
            times.append((env.now, item))

        def producer(env):
            yield env.timeout(5)
            yield store.put("x")

        env.process(consumer(env))
        env.process(producer(env))
        env.run()
        assert times == [(5, "x")]

    def test_bounded_put_blocks(self, env):
        store = Store(env, capacity=1)
        log = []

        def producer(env):
            yield store.put("a")
            log.append(("put a", env.now))
            yield store.put("b")
            log.append(("put b", env.now))

        def consumer(env):
            yield env.timeout(2)
            item = yield store.get()
            log.append((f"got {item}", env.now))

        env.process(producer(env))
        env.process(consumer(env))
        env.run()
        assert ("put b", 2) in log

    def test_invalid_capacity(self, env):
        with pytest.raises(SimulationError):
            Store(env, capacity=0)


class TestContainer:
    def test_levels(self, env):
        c = Container(env, capacity=10, init=4)
        assert c.level == 4

    def test_get_blocks_until_enough(self, env):
        c = Container(env, capacity=10, init=0)
        at = []

        def getter(env):
            yield c.get(5)
            at.append(env.now)

        def putter(env):
            for _ in range(5):
                yield env.timeout(1)
                yield c.put(1)

        env.process(getter(env))
        env.process(putter(env))
        env.run()
        assert at == [5]

    def test_put_blocks_at_capacity(self, env):
        c = Container(env, capacity=2, init=2)
        at = []

        def putter(env):
            yield c.put(1)
            at.append(env.now)

        def getter(env):
            yield env.timeout(3)
            yield c.get(1)

        env.process(putter(env))
        env.process(getter(env))
        env.run()
        assert at == [3]

    def test_impossible_get_rejected(self, env):
        c = Container(env, capacity=2)
        with pytest.raises(SimulationError):
            c.get(5)

    def test_negative_amounts_rejected(self, env):
        c = Container(env, capacity=2)
        with pytest.raises(SimulationError):
            c.put(-1)
        with pytest.raises(SimulationError):
            c.get(-1)
