"""Tests for the repro-sim command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_migrate_defaults(self):
        args = build_parser().parse_args(["migrate"])
        assert args.workload == "specweb"
        assert args.scheme == "tpm"
        assert args.rate_limit is None

    def test_invalid_workload_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["migrate", "--workload", "doom"])

    def test_invalid_scheme_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["migrate", "--scheme", "teleport"])


class TestCommands:
    SMALL = ["--scale", "0.004", "--warmup", "3"]

    def test_migrate_tpm(self, capsys):
        assert main(["migrate", "--workload", "idle", *self.SMALL]) == 0
        out = capsys.readouterr().out
        assert "primary TPM migration" in out
        assert "downtime" in out
        assert "wire ledger" in out

    def test_migrate_roundtrip(self, capsys):
        assert main(["migrate", "--workload", "specweb", "--roundtrip",
                     "--dwell", "3", *self.SMALL]) == 0
        out = capsys.readouterr().out
        assert "incremental migration back" in out

    def test_migrate_guest_aware_flag(self, capsys):
        assert main(["migrate", "--workload", "idle", "--guest-aware",
                     *self.SMALL]) == 0
        out = capsys.readouterr().out
        assert "guest_aware_skipped_blocks" in out

    def test_migrate_baseline_scheme(self, capsys):
        assert main(["migrate", "--scheme", "freeze-and-copy",
                     "--workload", "idle", *self.SMALL]) == 0
        assert "freeze-and-copy migration" in capsys.readouterr().out

    def test_migrate_on_demand_reports_dependency(self, capsys):
        assert main(["migrate", "--scheme", "on-demand", "--workload",
                     "idle", "--dwell", "2", *self.SMALL]) == 0
        assert "residual dependency" in capsys.readouterr().out

    def test_backup_chain(self, capsys):
        assert main(["backup", "--workload", "idle", "--increments", "2",
                     "--interval", "2", *self.SMALL]) == 0
        out = capsys.readouterr().out
        assert "full backup" in out
        assert "restore verified: CONSISTENT" in out

    def test_backup_with_mid_chain_migration(self, capsys):
        assert main(["backup", "--workload", "specweb", "--increments", "2",
                     "--interval", "2", "--migrate-between",
                     *self.SMALL]) == 0
        out = capsys.readouterr().out
        assert "live-migrated mid-chain" in out
        assert "restore verified: CONSISTENT" in out

    def test_table1(self, capsys):
        assert main(["table1", "--workload", "video", *self.SMALL]) == 0
        out = capsys.readouterr().out
        assert "Table I" in out and "measured" in out

    def test_table2(self, capsys):
        assert main(["table2", "--workload", "specweb", "--dwell", "3",
                     *self.SMALL]) == 0
        assert "Table II" in capsys.readouterr().out

    def test_locality(self, capsys):
        assert main(["locality", "--workload", "kernelbuild",
                     "--duration", "20", "--warmup", "10",
                     "--scale", "0.02"]) == 0
        out = capsys.readouterr().out
        assert "locality" in out and "rewrite fraction" in out
