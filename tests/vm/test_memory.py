"""Unit tests for GuestMemory dirty logging."""

import numpy as np
import pytest

from repro.errors import StorageError
from repro.storage import GenerationClock
from repro.vm import GuestMemory


class TestBasics:
    def test_geometry(self):
        mem = GuestMemory(128, page_size=4096)
        assert mem.nbytes == 128 * 4096
        assert not mem.logging

    def test_invalid_size(self):
        with pytest.raises(StorageError):
            GuestMemory(0)

    def test_touch_out_of_range(self):
        mem = GuestMemory(10)
        with pytest.raises(StorageError):
            mem.touch(np.array([10]))
        with pytest.raises(StorageError):
            mem.touch_range(8, 3)


class TestDirtyLogging:
    def test_touch_without_logging_not_recorded(self):
        mem = GuestMemory(10)
        mem.touch(np.array([1, 2]))
        assert mem.dirty_count() == 0

    def test_logging_records_touches(self):
        mem = GuestMemory(10)
        mem.start_logging()
        mem.touch(np.array([1, 2]))
        mem.touch_range(5, 3)
        assert mem.dirty_count() == 5
        assert mem.dirty_indices().tolist() == [1, 2, 5, 6, 7]

    def test_swap_dirty_resets_round(self):
        mem = GuestMemory(10)
        mem.start_logging()
        mem.touch(np.array([1]))
        taken = mem.swap_dirty()
        assert taken.dirty_indices().tolist() == [1]
        assert mem.dirty_count() == 0
        mem.touch(np.array([2]))
        assert mem.dirty_indices().tolist() == [2]

    def test_stop_logging_returns_final(self):
        mem = GuestMemory(10)
        mem.start_logging()
        mem.touch(np.array([3]))
        final = mem.stop_logging()
        assert final.dirty_indices().tolist() == [3]
        assert not mem.logging

    def test_swap_without_logging_rejected(self):
        mem = GuestMemory(10)
        with pytest.raises(StorageError):
            mem.swap_dirty()
        with pytest.raises(StorageError):
            mem.stop_logging()

    def test_empty_touch_is_noop(self):
        mem = GuestMemory(10)
        mem.start_logging()
        mem.touch(np.empty(0, dtype=np.int64))
        mem.touch_range(0, 0)
        assert mem.dirty_count() == 0


class TestTransfer:
    def test_export_import_roundtrip(self):
        clock = GenerationClock()
        src = GuestMemory(20, clock=clock)
        dst = GuestMemory(20, clock=clock)
        src.touch(np.arange(20))
        stamps = src.export_pages(np.arange(20))
        dst.import_pages(np.arange(20), stamps)
        assert dst.identical_to(src)

    def test_identical_requires_same_geometry(self):
        assert not GuestMemory(10).identical_to(GuestMemory(11))

    def test_import_shape_mismatch(self):
        mem = GuestMemory(10)
        with pytest.raises(StorageError):
            mem.import_pages(np.arange(2), np.zeros(3, dtype=np.uint64))

    def test_touches_after_import_diverge(self):
        clock = GenerationClock()
        src = GuestMemory(5, clock=clock)
        dst = GuestMemory(5, clock=clock)
        src.touch(np.array([0]))
        dst.import_pages(np.array([0]), src.export_pages(np.array([0])))
        assert dst.identical_to(src)
        src.touch(np.array([0]))
        assert not dst.identical_to(src)

    def test_snapshot_is_copy(self):
        mem = GuestMemory(5)
        snap = mem.snapshot()
        mem.touch(np.array([0]))
        assert snap[0] == 0
