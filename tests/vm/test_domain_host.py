"""Unit tests for Domain lifecycle and Host placement."""

import numpy as np
import pytest

from repro.errors import MigrationError
from repro.sim import Environment
from repro.storage import PhysicalDisk
from repro.units import MiB
from repro.vm import CPUState, Domain, DomainState, GuestMemory, Host, make_testbed


@pytest.fixture
def env():
    return Environment()


@pytest.fixture
def host(env):
    return Host(env, "h0", PhysicalDisk(env, 100 * MiB, 100 * MiB, seek_time=0))


@pytest.fixture
def domain(env, host):
    dom = Domain(env, GuestMemory(64), name="vm")
    vbd = host.prepare_vbd(100)
    host.attach_domain(dom, vbd)
    return dom


class TestPlacement:
    def test_attach_binds_everything(self, host, domain):
        assert domain.host is host
        assert host.domain(domain.domain_id) is domain
        assert domain.vbd is host.vbd_of(domain.domain_id)
        assert host.driver_of(domain.domain_id).vbd is domain.vbd

    def test_double_attach_rejected(self, env, host, domain):
        other = Host(env, "h1")
        with pytest.raises(MigrationError):
            other.attach_domain(domain, other.prepare_vbd(100))

    def test_detach_then_reattach(self, env, host, domain):
        dom_id = domain.domain_id
        dom, vbd = host.detach_domain(dom_id)
        assert dom.host is None
        other = Host(env, "h1", clock=host.clock)
        other.attach_domain(dom, other.prepare_vbd(100))
        assert dom.host is other
        with pytest.raises(MigrationError):
            host.domain(dom_id)

    def test_unknown_domain_lookups(self, host):
        with pytest.raises(MigrationError):
            host.domain(999)
        with pytest.raises(MigrationError):
            host.vbd_of(999)
        with pytest.raises(MigrationError):
            host.driver_of(999)

    def test_detached_domain_io_fails(self, env):
        dom = Domain(env, GuestMemory(4))
        with pytest.raises(MigrationError):
            _ = dom.vbd

    def test_domains_listing(self, host, domain):
        assert host.domains == [domain]


class TestLifecycle:
    def test_suspend_resume_cycle(self, env, domain):
        assert domain.running
        domain.suspend()
        assert domain.state is DomainState.SUSPENDED
        assert domain.suspended_at == 0.0
        domain.resume()
        assert domain.running
        assert domain.resumed_at == 0.0

    def test_double_suspend_rejected(self, domain):
        domain.suspend()
        with pytest.raises(MigrationError):
            domain.suspend()

    def test_resume_running_rejected(self, domain):
        with pytest.raises(MigrationError):
            domain.resume()

    def test_io_blocks_while_suspended(self, env, domain):
        done = []

        def guest(env):
            yield from domain.write(0)
            done.append(env.now)

        def migrator(env):
            domain.suspend()
            yield env.timeout(5)
            domain.resume()

        env.process(migrator(env))
        env.process(guest(env))
        env.run()
        assert done[0] >= 5.0

    def test_memory_touch_while_suspended_rejected(self, domain):
        domain.suspend()
        with pytest.raises(MigrationError):
            domain.touch_memory(np.array([0]))


class TestGuestIO:
    def test_write_lands_on_current_host_vbd(self, env, host, domain):
        def guest(env):
            yield from domain.write(7, 2)

        env.run(until=env.process(guest(env)))
        assert host.vbd_of(domain.domain_id).read(7)[0] > 0

    def test_io_after_migration_goes_to_new_host(self, env, host, domain):
        dst = Host(env, "dst", PhysicalDisk(env, 100 * MiB, 100 * MiB, 0),
                   clock=host.clock)
        dst_vbd = dst.prepare_vbd(100)

        def guest(env):
            yield from domain.write(0)
            # "migrate"
            host.detach_domain(domain.domain_id)
            dst.attach_domain(domain, dst_vbd)
            yield from domain.write(1)

        env.run(until=env.process(guest(env)))
        assert dst_vbd.read(1)[0] > 0
        assert dst_vbd.read(0)[0] == 0  # first write stayed on the source


class TestCPUState:
    def test_capture_bumps_version(self):
        cpu = CPUState()
        snap1 = cpu.capture()
        snap2 = cpu.capture()
        assert snap2.version == snap1.version + 1

    def test_restore_adopts_snapshot(self):
        src, dst = CPUState(), CPUState()
        src.context["pc"] = 0x1234
        snap = src.capture()
        dst.restore(snap)
        assert dst.context["pc"] == 0x1234
        assert dst.version == snap.version


class TestTestbed:
    def test_make_testbed_shares_clock(self, env):
        src, dst, clock = make_testbed(env)
        assert src.clock is clock and dst.clock is clock
        assert src.name == "source" and dst.name == "destination"
