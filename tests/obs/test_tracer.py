"""Tracer unit tests: span nesting, lifecycle, and the null path."""

import pytest

from repro.obs import NULL_TRACER, Tracer, install
from repro.sim import Environment


@pytest.fixture
def tracer(env):
    return Tracer(env)


class TestSpanNesting:
    def test_parent_is_innermost_open_span(self, env, tracer):
        root = tracer.begin("migration:vm", category="migration")
        phase = tracer.begin("phase:precopy-disk", category="phase")
        chunk = tracer.begin("chunk", category="transfer")
        assert root.parent is None
        assert phase.parent == root.sid
        assert chunk.parent == phase.sid

    def test_sibling_after_close(self, env, tracer):
        root = tracer.begin("migration:vm")
        first = tracer.begin("phase:init", category="phase")
        tracer.end(first)
        second = tracer.begin("phase:precopy-disk", category="phase")
        assert second.parent == root.sid  # not `first`

    def test_walk_depths(self, env, tracer):
        tracer.begin("a")
        tracer.begin("b")
        tracer.end(tracer.begin("c"))
        depths = {s.name: d for d, s in tracer.walk()}
        assert depths == {"a": 0, "b": 1, "c": 2}

    def test_children_of(self, env, tracer):
        root = tracer.begin("a")
        b = tracer.begin("b")
        tracer.end(b)
        c = tracer.begin("c")
        assert [s.sid for s in tracer.children_of(root)] == [b.sid, c.sid]

    def test_sids_unique_and_ordered(self, env, tracer):
        spans = [tracer.begin(f"s{i}") for i in range(5)]
        sids = [s.sid for s in spans]
        assert sids == sorted(sids) and len(set(sids)) == 5


class TestSpanLifecycle:
    def test_duration_uses_simulated_clock(self, env, tracer):
        span = tracer.begin("work")

        def proc(env):
            yield env.timeout(2.5)

        env.run(until=env.process(proc(env)))
        tracer.end(span)
        assert span.start == 0.0
        assert span.end == 2.5
        assert span.duration == 2.5

    def test_open_span_duration_zero(self, env, tracer):
        span = tracer.begin("open")
        assert span.open and span.duration == 0.0

    def test_end_is_idempotent(self, env, tracer):
        span = tracer.begin("once")
        tracer.end(span)
        first_end = span.end
        tracer.end(span)
        assert span.end == first_end

    def test_end_at_override(self, env, tracer):
        span = tracer.begin("postcopy")

        def proc(env):
            yield env.timeout(4.0)

        env.run(until=env.process(proc(env)))
        tracer.end(span, at=3.0)
        assert span.end == 3.0 and env.now == 4.0

    def test_end_attaches_args(self, env, tracer):
        span = tracer.begin("phase:freeze", category="phase")
        tracer.end(span, final_dirty_pages=7)
        assert span.args["final_dirty_pages"] == 7

    def test_context_manager_closes_and_annotates_errors(self, env, tracer):
        with tracer.span("ok") as s:
            pass
        assert not s.open and "error" not in s.args

        with pytest.raises(RuntimeError):
            with tracer.span("boom") as s:
                raise RuntimeError("kaput")
        assert not s.open and s.args["error"] == "kaput"

    def test_close_open_innermost_first(self, env, tracer):
        a = tracer.begin("a")
        b = tracer.begin("b")
        tracer.close_open(aborted=True)
        assert not tracer.open_spans
        assert a.args["aborted"] and b.args["aborted"]

    def test_find_by_name_and_category(self, env, tracer):
        tracer.begin("phase:init", category="phase")
        tracer.begin("phase:freeze", category="phase")
        tracer.begin("chunk", category="transfer")
        assert len(tracer.find(category="phase")) == 2
        assert len(tracer.find(name="phase:freeze")) == 1
        assert tracer.find(name="nope") == []


class TestInstants:
    def test_instant_records_time_and_args(self, env, tracer):
        def proc(env):
            yield env.timeout(1.25)
            tracer.instant("suspend", category="freeze", note=1)

        env.run(until=env.process(proc(env)))
        (inst,) = tracer.instants
        assert inst.at == 1.25
        assert inst.category == "freeze"
        assert inst.args == {"note": 1}

    def test_len_counts_spans_and_instants(self, env, tracer):
        tracer.begin("a")
        tracer.instant("x")
        assert len(tracer) == 2


class TestNullTracer:
    def test_records_nothing(self, env):
        t = NULL_TRACER
        span = t.begin("migration:vm", category="migration", key="v")
        t.end(span, more="args")
        t.instant("suspend", category="freeze")
        with t.span("ctx") as s:
            s.note(ignored=True)
        t.close_open()
        assert len(t) == 0
        assert t.spans == [] and t.instants == []
        assert t.find() == [] and list(t.walk()) == []
        assert t.open_spans == [] and t.children_of(span) == []
        assert not t.enabled

    def test_null_span_is_inert(self):
        span = NULL_TRACER.begin("x")
        assert span.duration == 0.0 and not span.open
        assert span.note(a=1) is span and span.args == {}

    def test_environment_defaults_to_null(self):
        env = Environment()
        assert not env.tracer.enabled
        assert not env.metrics.enabled

    def test_install_is_idempotent(self):
        env = Environment()
        tracer, metrics = install(env)
        assert tracer.enabled and metrics.enabled
        again_t, again_m = install(env)
        assert again_t is tracer and again_m is metrics
