"""MetricsRegistry unit tests: instruments, bucketing, and the null path."""

import pytest

from repro.obs import MetricsRegistry, NULL_METRICS
from repro.sim import Environment


@pytest.fixture
def registry(env):
    return MetricsRegistry(env)


def advance(env, dt):
    def proc(env):
        yield env.timeout(dt)

    env.run(until=env.process(proc(env)))


class TestCounter:
    def test_accumulates_and_samples(self, env, registry):
        c = registry.counter("bytes")
        c.inc(100)
        advance(env, 1.0)
        c.inc(50)
        assert c.total == 150
        assert c.samples == [(0.0, 100.0), (1.0, 150.0)]

    def test_same_name_same_instrument(self, env, registry):
        assert registry.counter("x") is registry.counter("x")

    def test_rejects_decrease(self, env, registry):
        with pytest.raises(ValueError):
            registry.counter("x").inc(-1)

    def test_bucketed_reports_deltas(self, env, registry):
        c = registry.counter("bytes")
        c.inc(10)          # t=0
        advance(env, 1.5)
        c.inc(10)          # t=1.5
        advance(env, 2.0)
        c.inc(5)           # t=3.5
        assert c.bucketed(1.0) == [(0.0, 10.0), (1.0, 10.0), (3.0, 5.0)]


class TestGauge:
    def test_last_write_wins(self, env, registry):
        g = registry.gauge("dirty")
        g.set(10)
        g.set(3)
        assert g.value == 3.0
        assert g.bucketed(1.0) == [(0.0, 3.0)]

    def test_kind_collision_raises(self, env, registry):
        registry.counter("x")
        with pytest.raises(TypeError):
            registry.gauge("x")


class TestHistogram:
    def test_stats(self, env, registry):
        h = registry.histogram("stall")
        for v in (1.0, 3.0, 2.0):
            h.observe(v)
        assert h.count == 3 and h.sum == 6.0
        assert h.min == 1.0 and h.max == 3.0 and h.mean == 2.0
        assert h.percentile(0.0) == 1.0
        assert h.percentile(1.0) == 3.0

    def test_empty_percentile_and_summary(self, env, registry):
        h = registry.histogram("stall")
        assert h.percentile(0.5) == 0.0
        assert h.summary()["min"] == 0.0 and h.summary()["max"] == 0.0

    def test_percentile_domain(self, env, registry):
        h = registry.histogram("stall")
        h.observe(1.0)
        with pytest.raises(ValueError):
            h.percentile(1.5)

    def test_bucketed_means(self, env, registry):
        h = registry.histogram("stall")
        h.observe(1.0)
        h.observe(3.0)
        assert h.bucketed(1.0) == [(0.0, 2.0)]


class TestRegistry:
    def test_names_prefix_sorted(self, env, registry):
        registry.counter("chan.disk.bytes")
        registry.counter("chan.memory.bytes")
        registry.gauge("precopy.dirty_blocks")
        assert registry.names("chan.") == ["chan.disk.bytes",
                                           "chan.memory.bytes"]
        assert len(registry) == 3
        assert "chan.disk.bytes" in registry
        assert registry.get("nope") is None

    def test_bucket_width_must_be_positive(self, env, registry):
        with pytest.raises(ValueError):
            registry.counter("x").bucketed(0.0)

    def test_snapshot(self, env, registry):
        registry.counter("c").inc(5)
        registry.gauge("g").set(2)
        snap = registry.snapshot()
        assert snap["c"] == {"kind": "counter", "samples": 1, "total": 5.0}
        assert snap["g"]["value"] == 2.0


class TestNullMetrics:
    def test_records_nothing(self):
        m = NULL_METRICS
        m.counter("x").inc(10)
        m.gauge("y").set(5)
        m.histogram("z").observe(1.0)
        assert len(m) == 0
        assert m.names() == [] and m.snapshot() == {}
        assert m.get("x") is None and "x" not in m
        assert not m.enabled

    def test_null_instrument_is_inert(self):
        inst = NULL_METRICS.counter("x")
        assert inst.total == 0.0 and inst.samples == []
        assert inst.bucketed(1.0) == [] and inst.percentile(0.5) == 0.0
        assert inst.summary() == {}

    def test_fresh_environment_uses_null_metrics(self):
        env = Environment()
        env.metrics.counter("free").inc(1)
        assert len(env.metrics) == 0
