"""End-to-end trace integrity on real TPM migrations.

Locks down the two invariants documented in docs/ARCHITECTURE.md:

1. recording never advances the clock, so per-phase span durations equal
   the :class:`MigrationReport` phase durations *exactly* (float ``==``,
   not approx) and the ``chan.*`` counters equal the byte ledger;
2. the disabled path is free: a run without observability installed
   reports numbers identical to an instrumented one.
"""

import json

import pytest

from repro.obs import install, phase_durations, to_chrome_trace


def observed_bed(make_bed, **kwargs):
    bed = make_bed(**kwargs)
    install(bed.env)
    return bed


def counter_total(metrics, name):
    inst = metrics.get(name)
    return 0 if inst is None else inst.total


@pytest.fixture
def traced_run(make_bed):
    """One full TPM migration under a dirtying guest, fully observed."""
    bed = observed_bed(make_bed)
    bed.random_writer()
    report = bed.migrate()
    assert report.consistency_verified
    return bed, report


class TestExactReportAgreement:
    def test_phase_span_durations_match_report(self, traced_run):
        bed, report = traced_run
        durations = phase_durations(bed.env.tracer)
        # Exact float equality, not approx: span boundaries are read from
        # env.now at the same statements that stamp the report.
        assert durations["precopy-disk"] == (report.precopy_disk_ended_at
                                             - report.precopy_disk_started_at)
        assert durations["precopy-mem"] == (report.precopy_mem_ended_at
                                            - report.precopy_mem_started_at)
        assert durations["freeze"] == report.downtime
        assert durations["postcopy"] == report.postcopy.duration

    def test_migration_span_covers_report(self, traced_run):
        bed, report = traced_run
        (mig,) = bed.env.tracer.find(category="migration")
        assert mig.start == report.started_at
        assert mig.args["total_migration_time"] == report.total_migration_time
        assert mig.args["downtime"] == report.downtime

    def test_chan_counters_match_byte_ledger(self, traced_run):
        bed, report = traced_run
        metrics = bed.env.metrics
        for category, nbytes in report.bytes_by_category.items():
            assert counter_total(metrics, f"chan.{category}.bytes") == nbytes
        # And no category on the wire escaped the ledger.
        ledgered = {f"chan.{c}.bytes" for c in report.bytes_by_category}
        assert set(metrics.names("chan.")) == ledgered

    def test_postcopy_counters_match_stats(self, traced_run):
        bed, report = traced_run
        metrics = bed.env.metrics
        stats = report.postcopy
        assert counter_total(metrics,
                             "postcopy.pushed_blocks") == stats.pushed_blocks
        assert counter_total(metrics,
                             "postcopy.pulled_blocks") == stats.pulled_blocks
        assert counter_total(metrics,
                             "postcopy.dropped_blocks") == stats.dropped_blocks
        assert counter_total(metrics,
                             "postcopy.stalled_reads") == stats.stalled_reads
        hist = metrics.get("postcopy.stall_seconds")
        assert (hist.sum if hist is not None else 0.0) == stats.stall_time

    def test_freeze_instants_match_timestamps(self, traced_run):
        bed, report = traced_run
        instants = {i.name: i for i in bed.env.tracer.instants
                    if i.category == "freeze"}
        assert instants["suspend"].at == report.suspended_at
        assert instants["resume"].at == report.resumed_at
        assert instants["resume"].args["downtime"] == report.downtime
        assert instants["bitmap:shipped"].args["dirty_blocks"] \
            == report.remaining_dirty_blocks


class TestSpanTree:
    def test_all_spans_closed_and_rooted(self, traced_run):
        bed, _ = traced_run
        tracer = bed.env.tracer
        assert tracer.open_spans == []
        (mig,) = tracer.find(category="migration")
        for phase in tracer.find(category="phase"):
            assert phase.parent == mig.sid

    def test_iterations_nest_under_their_phase(self, traced_run):
        bed, report = traced_run
        tracer = bed.env.tracer
        (disk_phase,) = tracer.find(name="phase:precopy-disk")
        iterations = [s for s in tracer.children_of(disk_phase)
                      if s.category == "iteration"]
        assert len(iterations) == len(report.disk_iterations)
        for it in iterations:
            chunks = tracer.children_of(it)
            assert chunks and all(c.category == "transfer" for c in chunks)

    def test_span_times_are_sane(self, traced_run):
        bed, _ = traced_run
        for span in bed.env.tracer.spans:
            assert span.end is not None and span.end >= span.start


class TestChromeExportOfRealRun:
    def test_round_trips_and_is_complete(self, traced_run):
        bed, _ = traced_run
        tracer, metrics = bed.env.tracer, bed.env.metrics
        doc = to_chrome_trace(tracer, metrics)
        assert json.loads(json.dumps(doc)) == doc
        complete = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert len(complete) == len(tracer.spans)
        assert len([e for e in doc["traceEvents"] if e["ph"] == "i"]) \
            == len(tracer.instants)


class TestDisabledRunMatchesSeed:
    def test_disabled_run_matches_seed(self, make_bed):
        """Observability attached vs absent: every reported number equal."""

        def run(observe):
            bed = make_bed() if not observe else observed_bed(make_bed)
            bed.random_writer()
            return bed.migrate(), bed

        plain, plain_bed = run(observe=False)
        traced, traced_bed = run(observe=True)

        assert not plain_bed.env.tracer.enabled
        assert len(traced_bed.env.tracer.spans) > 0

        assert plain.total_migration_time == traced.total_migration_time
        assert plain.downtime == traced.downtime
        assert plain.bytes_by_category == traced.bytes_by_category
        assert plain.migrated_bytes == traced.migrated_bytes
        assert plain.suspended_at == traced.suspended_at
        assert plain.resumed_at == traced.resumed_at
        assert len(plain.disk_iterations) == len(traced.disk_iterations)
        assert len(plain.mem_rounds) == len(traced.mem_rounds)
        assert plain.postcopy.pushed_blocks == traced.postcopy.pushed_blocks
        assert plain.postcopy.pulled_blocks == traced.postcopy.pulled_blocks
        assert plain_bed.env.now == traced_bed.env.now
