"""Exporter tests: Chrome trace-event and plain-JSON documents."""

import json

import pytest

from repro.obs import (
    NULL_TRACER,
    SCHEMA_VERSION,
    MetricsRegistry,
    Tracer,
    dump_chrome_trace,
    dump_json,
    phase_durations,
    to_chrome_trace,
    to_json,
)


@pytest.fixture
def traced(env):
    """A small but complete trace: nested spans, an instant, metrics."""
    tracer = Tracer(env)
    metrics = MetricsRegistry(env)

    def proc(env):
        mig = tracer.begin("migration:vm", category="migration",
                           scheme="tpm")
        phase = tracer.begin("phase:precopy-disk", category="phase")
        metrics.counter("chan.disk.bytes").inc(4096)
        yield env.timeout(2.0)
        metrics.gauge("precopy.dirty_blocks").set(10)
        metrics.histogram("postcopy.stall_seconds").observe(0.5)
        tracer.end(phase)
        tracer.instant("suspend", category="freeze")
        yield env.timeout(0.5)
        tracer.end(mig)

    env.run(until=env.process(proc(env)))
    return tracer, metrics


class TestChromeTrace:
    def test_round_trips_json_loads(self, traced):
        tracer, metrics = traced
        doc = to_chrome_trace(tracer, metrics)
        assert json.loads(json.dumps(doc)) == doc

    def test_span_events(self, traced):
        tracer, metrics = traced
        doc = to_chrome_trace(tracer, metrics)
        spans = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert [s["name"] for s in spans] == ["migration:vm",
                                              "phase:precopy-disk"]
        mig, phase = spans
        assert mig["ts"] == 0.0 and mig["dur"] == pytest.approx(2.5e6)
        assert phase["dur"] == pytest.approx(2.0e6)  # microseconds
        assert phase["args"]["parent"] == mig["args"]["sid"]
        assert mig["cat"] == "migration" and mig["args"]["scheme"] == "tpm"

    def test_instant_events(self, traced):
        tracer, metrics = traced
        doc = to_chrome_trace(tracer, metrics)
        (inst,) = [e for e in doc["traceEvents"] if e["ph"] == "i"]
        assert inst["name"] == "suspend" and inst["s"] == "p"
        assert inst["ts"] == pytest.approx(2.0e6)

    def test_counter_tracks_skip_histograms(self, traced):
        tracer, metrics = traced
        doc = to_chrome_trace(tracer, metrics)
        counters = [e for e in doc["traceEvents"] if e["ph"] == "C"]
        names = {e["name"] for e in counters}
        assert names == {"chan.disk.bytes", "precopy.dirty_blocks"}
        assert "postcopy.stall_seconds" not in names

    def test_events_sorted_by_timestamp(self, traced):
        tracer, metrics = traced
        ts = [e["ts"] for e in to_chrome_trace(tracer, metrics)["traceEvents"]]
        assert ts == sorted(ts)

    def test_header(self, traced):
        tracer, metrics = traced
        doc = to_chrome_trace(tracer, metrics)
        assert doc["otherData"]["schema_version"] == SCHEMA_VERSION
        assert doc["otherData"]["clock"] == "simulated-seconds"
        assert doc["displayTimeUnit"] == "ms"

    def test_null_tracer_emits_empty_document(self):
        doc = to_chrome_trace(NULL_TRACER)
        assert doc["traceEvents"] == []

    def test_open_span_exports_zero_duration(self, env):
        tracer = Tracer(env)
        tracer.begin("still-open")
        (event,) = to_chrome_trace(tracer)["traceEvents"]
        assert event["dur"] == 0.0


class TestPlainJson:
    def test_round_trips_json_loads(self, traced):
        tracer, metrics = traced
        doc = to_json(tracer, metrics)
        assert json.loads(json.dumps(doc)) == doc

    def test_structure(self, traced):
        tracer, metrics = traced
        doc = to_json(tracer, metrics)
        assert doc["schema_version"] == SCHEMA_VERSION
        assert [s["name"] for s in doc["spans"]] == ["migration:vm",
                                                     "phase:precopy-disk"]
        assert doc["spans"][1]["duration"] == pytest.approx(2.0)
        assert doc["instants"][0]["at"] == pytest.approx(2.0)
        assert doc["metrics"]["chan.disk.bytes"]["total"] == 4096.0
        assert doc["metrics"]["chan.disk.bytes"]["series"] == [[0.0, 4096.0]]

    def test_metrics_omitted_when_not_passed(self, traced):
        tracer, _ = traced
        assert to_json(tracer)["metrics"] == {}


class TestDumpFiles:
    def test_dump_chrome_trace(self, traced, tmp_path):
        tracer, metrics = traced
        path = dump_chrome_trace(str(tmp_path / "t.trace.json"),
                                 tracer, metrics)
        with open(path, encoding="utf-8") as fh:
            doc = json.load(fh)
        assert doc == to_chrome_trace(tracer, metrics)

    def test_dump_json(self, traced, tmp_path):
        tracer, metrics = traced
        path = dump_json(str(tmp_path / "t.json"), tracer, metrics)
        with open(path, encoding="utf-8") as fh:
            assert json.load(fh) == to_json(tracer, metrics)

    def test_non_serializable_args_degrade_to_strings(self, env, tmp_path):
        tracer = Tracer(env)
        span = tracer.begin("weird", payload={1, 2})  # a set: not JSON
        tracer.end(span)
        path = dump_chrome_trace(str(tmp_path / "w.json"), tracer)
        with open(path, encoding="utf-8") as fh:
            json.load(fh)  # must not raise


class TestPhaseDurations:
    def test_sums_per_phase_and_strips_prefix(self, env):
        tracer = Tracer(env)

        def proc(env):
            for _ in range(2):
                span = tracer.begin("phase:precopy-disk", category="phase")
                yield env.timeout(1.0)
                tracer.end(span)
            span = tracer.begin("phase:freeze", category="phase")
            yield env.timeout(0.25)
            tracer.end(span)
            # Non-phase categories are excluded even with a phase-like name.
            tracer.end(tracer.begin("phase:bogus", category="migration"))

        env.run(until=env.process(proc(env)))
        assert phase_durations(tracer) == {"precopy-disk": 2.0,
                                           "freeze": 0.25}

    def test_empty_tracer(self, env):
        assert phase_durations(Tracer(env)) == {}
