"""Shared fixtures: miniature two-machine testbeds that run in milliseconds."""

import numpy as np
import pytest

from repro.core import MigrationConfig, Migrator
from repro.net import Channel, Link
from repro.sim import Environment, Timeline
from repro.storage import GenerationClock, PhysicalDisk
from repro.units import MB, MiB
from repro.vm import Domain, GuestMemory, Host


SMALL_NBLOCKS = 2_000     # ~8 MiB disk
SMALL_NPAGES = 512        # 2 MiB memory


@pytest.fixture
def env():
    return Environment()


@pytest.fixture
def small_config():
    """Config tuned so small testbeds converge in a handful of iterations."""
    return MigrationConfig(
        chunk_blocks=128,
        disk_dirty_threshold_blocks=16,
        mem_dirty_threshold_pages=16,
        mem_chunk_pages=128,
    )


class MiniBed:
    """A tiny source/destination pair with one domain, for unit tests."""

    def __init__(self, env, nblocks=SMALL_NBLOCKS, npages=SMALL_NPAGES,
                 config=None, data=False, prefill=True,
                 disk_bw=100 * MiB, link_bw=125 * MB, latency=50e-6):
        self.env = env
        self.clock = GenerationClock()
        # Zero freeze overhead: at this tiny scale the fixed hypervisor
        # costs would dominate every duration assertion.
        self.config = config if config is not None else MigrationConfig(
            chunk_blocks=128, disk_dirty_threshold_blocks=16,
            mem_dirty_threshold_pages=16, mem_chunk_pages=128,
            suspend_overhead=0.0, resume_overhead=0.0)
        self.source = Host(env, "source",
                           PhysicalDisk(env, disk_bw, disk_bw, 0.1e-3),
                           self.clock)
        self.destination = Host(env, "destination",
                                PhysicalDisk(env, disk_bw, disk_bw, 0.1e-3),
                                self.clock)
        self.vbd = self.source.prepare_vbd(nblocks, data=data)
        if prefill:
            self.vbd.write(0, nblocks)
        self.domain = Domain(env, GuestMemory(npages, clock=self.clock),
                             name="vm")
        self.source.attach_domain(self.domain, self.vbd)
        self.timeline = Timeline(env)
        self.migrator = Migrator(env, self.config)
        self.migrator.connect(self.source, self.destination,
                              bandwidth=link_bw, latency=latency)

    def channels(self, name="test"):
        """A fresh (fwd, rev) channel pair over the configured link."""
        fwd_link, rev_link = self.migrator.link_between(self.source,
                                                        self.destination)
        return (Channel(self.env, fwd_link, name=f"{name}:fwd"),
                Channel(self.env, rev_link, name=f"{name}:rev"))

    def random_writer(self, region=(0, 500), interval=0.005, nblocks=2,
                      seed=1, touch_pages=4):
        """A background guest process writing random blocks forever."""
        rng = np.random.default_rng(seed)
        domain = self.domain

        def proc(env):
            while True:
                yield from domain.ensure_running()
                block = int(rng.integers(region[0], region[0] + region[1]))
                yield from domain.write(block, nblocks)
                if touch_pages:
                    yield from domain.ensure_running()
                    domain.touch_memory(
                        rng.integers(0, domain.memory.npages,
                                     size=touch_pages))
                yield env.timeout(interval)

        return self.env.process(proc(self.env), name="writer")

    def migrate(self, config=None):
        proc = self.migrator.migrate_process(
            self.domain,
            self.destination if self.domain.host is self.source
            else self.source,
            config)
        return self.env.run(until=proc)


@pytest.fixture
def bed(env):
    return MiniBed(env)


@pytest.fixture
def make_bed():
    """Factory producing independent mini testbeds (fresh Environment each)."""

    def factory(**kwargs):
        return MiniBed(Environment(), **kwargs)

    return factory


@pytest.fixture
def byte_bed(env):
    """Byte-backed mini testbed for end-to-end content integrity checks."""
    return MiniBed(env, nblocks=256, npages=64, data=True)
