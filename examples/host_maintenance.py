#!/usr/bin/env python3
"""Host maintenance with Incremental Migration (paper §V's motivating case).

Scenario: the source machine needs a firmware update.  The VM is migrated
away with TPM, the machine is serviced, and the VM migrates *back*.
Because the destination kept tracking writes in the IM bitmap (BM_3) and
the source still holds the stale disk copy, the return trip transfers
only the blocks that changed — seconds instead of minutes.

Run:
    python examples/host_maintenance.py
"""

from repro.analysis import build_testbed
from repro.units import fmt_bytes, fmt_time


def describe(label: str, report) -> None:
    kind = "incremental" if report.incremental else "full"
    print(f"  {label} ({kind}):")
    print(f"    total time : {fmt_time(report.total_migration_time)}")
    print(f"    downtime   : {fmt_time(report.downtime)}")
    print(f"    moved      : {fmt_bytes(report.migrated_bytes)}"
          f"  (disk portion {fmt_bytes(report.storage_bytes)})")
    print(f"    first-iteration blocks: "
          f"{report.disk_iterations[0].units_sent}")


def main() -> None:
    bed = build_testbed(workload="kernelbuild", scale=0.02, seed=7)
    bed.start_workload()
    bed.run_for(15.0)

    print("== Step 1: evacuate the VM for maintenance ==")
    away = bed.migrate()
    describe("source -> destination", away)
    assert bed.domain.host is bed.destination

    print("\n== Step 2: maintenance window (VM keeps working elsewhere) ==")
    maintenance = 30.0
    before = bed.workload.bytes_processed
    bed.run_for(maintenance)
    print(f"  {fmt_time(maintenance)} of maintenance; the build pushed "
          f"{fmt_bytes(bed.workload.bytes_processed - before)} meanwhile")
    im_bitmap = bed.destination.driver_of(
        bed.domain.domain_id).tracking_bitmap("im")
    print(f"  IM bitmap accumulated {im_bitmap.count()} dirty blocks "
          f"({fmt_bytes(im_bitmap.serialized_nbytes())} on the wire)")

    print("\n== Step 3: migrate back — incrementally ==")
    back = bed.migrate()
    describe("destination -> source", back)
    assert back.incremental
    assert bed.domain.host is bed.source

    speedup = away.storage_migration_time / max(back.storage_migration_time,
                                                1e-9)
    saved = away.storage_bytes / max(back.storage_bytes, 1)
    print(f"\nIM verdict: storage migration {speedup:.0f}x faster, "
          f"{saved:.0f}x less disk data than the primary migration.")


if __name__ == "__main__":
    main()
