#!/usr/bin/env python3
"""Telecommuting: the working environment commutes office <-> home (§V).

The paper's second IM scenario: a user's VM moves to the home machine in
the evening and back to the office machine in the morning, day after day.
After the first (full) migration every trip is incremental, so the commute
cost is proportional to a day's edits, not to the 40 GB disk.

Run:
    python examples/telecommute.py
"""

from repro.analysis import build_testbed
from repro.units import fmt_bytes, fmt_time


def main() -> None:
    bed = build_testbed(workload="specweb", scale=0.02, seed=21)
    office, home = bed.source, bed.destination
    bed.start_workload()
    bed.run_for(10.0)

    print(f"{'trip':28s}  {'mode':12s}  {'storage time':>12s}  "
          f"{'disk moved':>12s}  {'downtime':>10s}")
    print("-" * 82)

    workday = 20.0  # simulated "day" of activity between trips
    for day in range(1, 4):
        for leg, destination in (("evening: office -> home", home),
                                 ("morning: home -> office", office)):
            report = bed.migrate(destination=destination)
            mode = "incremental" if report.incremental else "FULL"
            print(f"day {day}, {leg:22s}  {mode:12s}  "
                  f"{fmt_time(report.storage_migration_time):>12s}  "
                  f"{fmt_bytes(report.storage_bytes):>12s}  "
                  f"{fmt_time(report.downtime):>10s}")
            assert report.consistency_verified
            bed.run_for(workday)

    full = bed.migrator.history[0]
    trips = bed.migrator.history[1:]
    avg_inc = sum(r.storage_bytes for r in trips) / len(trips)
    print("-" * 82)
    print(f"first trip moved {fmt_bytes(full.storage_bytes)}; every later "
          f"trip averaged {fmt_bytes(avg_inc)} "
          f"({full.storage_bytes / avg_inc:.0f}x less).")
    print("The VM looked alive throughout: worst downtime "
          f"{fmt_time(max(r.downtime for r in bed.migrator.history))}.")


if __name__ == "__main__":
    main()
