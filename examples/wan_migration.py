#!/usr/bin/env python3
"""Whole-system migration over a WAN-class path (paper refs [6], [9]).

The paper's scheme targets a Gigabit LAN, but the same algorithms run over
metro/wide-area paths — that is Bradford et al.'s setting and the
Travostino MAN/WAN reference.  This example migrates the video server over
a 100 Mbit / 20 ms path and shows what helps: compressing the stream
(§III-A) cuts total time nearly in half; the block-bitmap still keeps
downtime in tens of milliseconds despite the long haul.

Run:
    python examples/wan_migration.py
"""

from repro.analysis import build_testbed
from repro.core import MigrationConfig
from repro.units import MB, fmt_bytes, fmt_time

SCALE = 0.02
WAN_BW = 12.5 * MB      # 100 Mbit/s
WAN_LATENCY = 0.020     # 20 ms one way


def run(label: str, config: MigrationConfig) -> None:
    bed = build_testbed(workload="video", scale=SCALE, seed=11,
                        config=config, link_bandwidth=WAN_BW,
                        link_latency=WAN_LATENCY)
    bed.start_workload()
    bed.run_for(10.0)
    report = bed.migrate(config=config)
    stalls = bed.workload.stalls
    print(f"  {label:24s} total={fmt_time(report.total_migration_time):>9s}"
          f"  downtime={fmt_time(report.downtime):>8s}"
          f"  wire={fmt_bytes(report.migrated_bytes):>10s}"
          f"  playback stalls={stalls}")
    assert report.consistency_verified


def main() -> None:
    print(f"Migrating the video server over a 100 Mbit, 20 ms WAN path "
          f"(scale={SCALE}):\n")
    run("plain", MigrationConfig())
    run("compressed 2:1", MigrationConfig(compress=True,
                                          compression_ratio=2.0))
    run("compressed 4:1", MigrationConfig(compress=True,
                                          compression_ratio=4.0))
    print("\nCompression shrinks the network-bound pre-copy almost "
          "linearly with the ratio,")
    print("while the block-bitmap keeps the freeze window tiny even at "
          "WAN latency.")


if __name__ == "__main__":
    main()
