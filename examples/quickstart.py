#!/usr/bin/env python3
"""Quickstart: one whole-system live migration, start to finish.

Builds the paper's two-machine testbed (scaled down so this runs in
about a second), starts a web-server workload in the VM, migrates the
VM — disk, memory, and CPU state — to the second machine with TPM, and
prints the migration report.

Run:
    python examples/quickstart.py
"""

from repro.analysis import build_testbed
from repro.units import fmt_bytes, fmt_time


def main() -> None:
    # A 1/50-scale testbed: ~780 MiB disk, ~10 MiB guest memory, GbE link.
    bed = build_testbed(workload="specweb", scale=0.02, seed=42)
    print(f"source:      {bed.source}")
    print(f"destination: {bed.destination}")
    print(f"guest:       {bed.domain} "
          f"({fmt_bytes(bed.domain.memory.nbytes)} RAM, "
          f"{fmt_bytes(bed.source.vbd_of(bed.domain.domain_id).nbytes)} VBD)")

    # Let the guest serve traffic for a while before migrating.
    bed.start_workload()
    bed.run_for(10.0)
    served = bed.workload.bytes_processed
    print(f"\nguest served {fmt_bytes(served)} in the first 10 s; "
          "starting live migration...\n")

    report = bed.migrate()

    print(report.summary())
    print(f"\n  phase breakdown:")
    print(f"    disk pre-copy  : "
          f"{fmt_time(report.precopy_disk_ended_at - report.precopy_disk_started_at)}"
          f" over {len(report.disk_iterations)} iteration(s)")
    print(f"    memory pre-copy: "
          f"{fmt_time(report.precopy_mem_ended_at - report.precopy_mem_started_at)}"
          f" over {len(report.mem_rounds)} round(s)")
    print(f"    freeze (downtime): {fmt_time(report.downtime)}")
    print(f"    post-copy      : {fmt_time(report.postcopy.duration)}")
    print(f"\n  wire ledger:")
    for category, nbytes in sorted(report.bytes_by_category.items()):
        print(f"    {category:8s}: {fmt_bytes(nbytes)}")

    print(f"\nVM now running on: {bed.domain.host.name}")
    print(f"storage consistency verified: {report.consistency_verified}")

    # The guest never stopped serving (downtime excepted):
    bed.run_for(5.0)
    print(f"guest still serving after migration: "
          f"{fmt_bytes(bed.workload.bytes_processed - served)} more")


if __name__ == "__main__":
    main()
