#!/usr/bin/env python3
"""Migration bandwidth tuning under a diabolical I/O load (§VI-C-3).

The paper's trade-off: limiting the bandwidth the migration may use
roughly halves its impact on the guest's disk throughput, but lengthens
the pre-copy phase (~37 % in their experiment).  This example sweeps the
rate limit and prints the frontier so an operator can pick a point.

Run:
    python examples/bandwidth_tuning.py
"""

from repro.analysis import build_testbed, performance_overhead
from repro.core import MigrationConfig
from repro.units import MB, fmt_time

SCALE = 0.01
WARMUP = 30.0


def run_with_limit(limit):
    cfg = MigrationConfig(rate_limit=limit)
    bed = build_testbed(workload="bonnie", scale=SCALE, seed=3, config=cfg)
    bed.start_workload()
    bed.run_for(WARMUP)
    report = bed.migrate(config=cfg)
    bed.run_for(10.0)
    impact = performance_overhead(
        bed.timeline, "bonnie:write",
        migration_window=(report.precopy_disk_started_at,
                          report.precopy_disk_ended_at),
        baseline_window=(0.0, WARMUP))
    precopy = report.precopy_disk_ended_at - report.precopy_disk_started_at
    return impact.overhead_fraction, precopy, report


def main() -> None:
    print("Sweeping migration rate limits while Bonnie++ hammers the disk\n")
    print(f"{'rate limit':>12s}  {'guest impact':>12s}  "
          f"{'pre-copy':>10s}  {'total':>10s}  {'downtime':>10s}")
    print("-" * 64)

    baseline = None
    for limit in (None, 60 * MB, 40 * MB, 25 * MB, 15 * MB):
        impact, precopy, report = run_with_limit(limit)
        label = "unlimited" if limit is None else f"{limit / MB:.0f} MB/s"
        if baseline is None:
            baseline = (impact, precopy)
        print(f"{label:>12s}  {impact * 100:>11.0f}%  "
              f"{fmt_time(precopy):>10s}  "
              f"{fmt_time(report.total_migration_time):>10s}  "
              f"{fmt_time(report.downtime):>10s}")

    print("-" * 64)
    print("Lower limits spare the guest but stretch the pre-copy — the")
    print("paper picked its limit to halve the impact at +37% pre-copy.")


if __name__ == "__main__":
    main()
