#!/usr/bin/env python3
"""Five migration schemes, one testbed (paper §II vs §IV).

Runs the same web-server VM through TPM and the four baselines the paper
discusses, then prints the comparative matrix that motivates the whole
design: only TPM is simultaneously *live*, *whole-system*, and *finite*
in its dependency on the source machine.

Run:
    python examples/scheme_shootout.py
"""

from repro.analysis.experiments import run_baseline_experiment
from repro.baselines import availability
from repro.units import fmt_bytes, fmt_time

SCALE = 0.01


def main() -> None:
    print(f"{'scheme':>16s}  {'downtime':>10s}  {'total':>9s}  "
          f"{'moved':>10s}  {'disk?':>5s}  source dependency")
    print("-" * 86)

    for scheme in ("freeze-and-copy", "shared-storage", "on-demand",
                   "delta-queue", "tpm"):
        report, bed, mig = run_baseline_experiment(
            scheme, "specweb", scale=SCALE, warmup=10.0, tail=10.0)
        if scheme == "shared-storage":
            disk, dependency = "no", "n/a (disk is shared)"
        elif scheme == "on-demand":
            disk = "yes"
            dependency = (f"UNBOUNDED — {mig.residual_blocks} blocks still "
                          f"only on the source")
            mig.stop()
            bed.env.run(until=bed.env.now + 0.1)
        elif scheme == "delta-queue":
            disk = "yes"
            dependency = (f"ends after replay (guest I/O blocked "
                          f"{fmt_time(report.extra['io_block_time'])})")
        elif scheme == "freeze-and-copy":
            disk, dependency = "yes", "none (but the VM was down throughout)"
        else:
            disk = "yes"
            dependency = (f"finite — post-copy done in "
                          f"{fmt_time(report.postcopy.duration)}")
        print(f"{scheme:>16s}  {fmt_time(report.downtime):>10s}  "
              f"{fmt_time(report.total_migration_time):>9s}  "
              f"{fmt_bytes(report.migrated_bytes):>10s}  {disk:>5s}  "
              f"{dependency}")

    print("-" * 86)
    p = 0.99
    print(f"availability note (§II-B): with machine availability p={p}, an "
          f"on-demand-migrated system runs at p^2 = {availability(p):.4f} — "
          "worse than never migrating.")


if __name__ == "__main__":
    main()
